package bench

import (
	"testing"
	"time"

	"resilex/internal/wrapper"
)

// TestE18FailoverZeroFailedRequests asserts the acceptance property of the
// failover run directly, independent of the emitted bench table: with
// replication factor 2, killing the primary owner of a key range mid-run
// loses zero requests — every request either lands on a live owner or fails
// over to one.
func TestE18FailoverZeroFailedRequests(t *testing.T) {
	w, err := wrapper.Train([]wrapper.Sample{
		{HTML: e15Top, Target: wrapper.TargetMarker()},
		{HTML: e15Bottom, Target: wrapper.TargetMarker()},
	}, wrapper.Config{Skip: []string{"BR"}})
	if err != nil {
		t.Fatal(err)
	}
	payload, err := w.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}

	res := runClusterBench(e18Config{
		shards:   3,
		replicas: 2,
		keys:     8,
		window:   400 * time.Millisecond,
		service:  5 * time.Millisecond,
		killOne:  true,
	}, payload)

	if res.requests == 0 {
		t.Fatal("failover run issued no requests")
	}
	if res.failed != 0 {
		t.Fatalf("%d of %d requests failed through the shard kill, want 0", res.failed, res.requests)
	}
	if res.failovers == 0 {
		t.Error("no failovers recorded — the kill never exercised the failover path")
	}
	if res.downNodes == 0 {
		t.Error("router never marked the killed shard down")
	}
}

// TestE18ShardScaling: under the capacity model, 2 shards must beat 1 —
// the cheap always-on guard for the scaling claim (the full 1/2/4 sweep
// runs in `make bench`).
func TestE18ShardScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive scaling check")
	}
	w, err := wrapper.Train([]wrapper.Sample{
		{HTML: e15Top, Target: wrapper.TargetMarker()},
		{HTML: e15Bottom, Target: wrapper.TargetMarker()},
	}, wrapper.Config{Skip: []string{"BR"}})
	if err != nil {
		t.Fatal(err)
	}
	payload, err := w.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	rate := func(shards int) float64 {
		res := runClusterBench(e18Config{
			shards: shards, replicas: 1, keys: 8,
			window:  400 * time.Millisecond,
			service: 5 * time.Millisecond,
		}, payload)
		if res.failed != 0 {
			t.Fatalf("%d shards: %d failed requests", shards, res.failed)
		}
		return float64(res.requests) / res.elapsed.Seconds()
	}
	r1, r2 := rate(1), rate(2)
	if r2 < r1*1.3 {
		t.Errorf("2 shards = %.0f req/s vs 1 shard = %.0f req/s — no scaling win", r2, r1)
	}
}
