package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"resilex/internal/obs"
)

// TestE15Supervisor runs the ladder experiment under an observer and checks
// the telemetry rows, the registry counters, and the BENCH_E15.json output.
func TestE15Supervisor(t *testing.T) {
	o := obs.New()
	DefaultObserver = o
	defer func() { DefaultObserver = nil }()

	table := E15Supervisor()
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %v", table.Rows)
	}
	rows := map[string][]string{}
	for _, r := range table.Rows {
		rows[r[0]] = r
	}
	vs, ghost := rows["vs"], rows["ghost"]
	if vs == nil || ghost == nil {
		t.Fatalf("missing site rows: %v", table.Rows)
	}
	// vs: breaker closed again after the lifecycle; rung 1 entered five
	// times (novel, future, two garbled, half-open trial) and served twice
	// (novel + trial); one refresh serve; a full transition cycle.
	if vs[1] != "closed" {
		t.Errorf("vs breaker = %q", vs[1])
	}
	if vs[2] != "2/5" {
		t.Errorf("vs wrapper serves/entries = %q", vs[2])
	}
	if !strings.HasPrefix(vs[3], "1/") {
		t.Errorf("vs refresh serves/entries = %q", vs[3])
	}
	if !strings.Contains(vs[6], "closed→open@") ||
		!strings.Contains(vs[6], "half-open→closed@") {
		t.Errorf("vs transitions = %q", vs[6])
	}
	// ghost: exactly one probe entry, served.
	if ghost[4] != "1/1" {
		t.Errorf("ghost probe serves/entries = %q", ghost[4])
	}

	// The registry saw both the supervisor counters and the machine phases
	// of the training/refresh constructions.
	snap := o.Metrics.Snapshot()
	if snap.Counters[`supervisor_rung_serves_total{site="vs",rung="refresh"}`] != 1 {
		t.Errorf("refresh serve counter missing: %v", snap.Counters)
	}
	if snap.Counters["machine_subset_states_total"] == 0 {
		t.Errorf("no machine phases recorded: %v", snap.Counters)
	}

	// PhaseDelta against an empty snapshot picks up exactly the phase
	// counters, and the table round-trips to BENCH_E15.json with them.
	table.Phases = PhaseDelta(obs.Snapshot{}, snap)
	if table.Phases["machine_subset_states_total"] == 0 {
		t.Errorf("phase delta missing subset states: %v", table.Phases)
	}
	for name := range table.Phases {
		if !phaseCounter(name) {
			t.Errorf("non-phase counter leaked into delta: %s", name)
		}
	}
	dir := t.TempDir()
	path, err := table.WriteJSON(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_E15.json" {
		t.Errorf("path = %s", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Table
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.ID != "E15" || back.Phases["machine_subset_states_total"] == 0 {
		t.Errorf("round-trip lost data: %+v", back)
	}
}

// TestPhaseDeltaFilters: only phase counters survive, and unchanged ones
// are dropped.
func TestPhaseDeltaFilters(t *testing.T) {
	before := obs.Snapshot{Counters: map[string]int64{
		"machine_subset_states_total": 10,
	}}
	after := obs.Snapshot{Counters: map[string]int64{
		"machine_subset_states_total":   25,
		"machine_minimize_passes_total": 4,
		"supervisor_rung_entries_total": 2,
		"unrelated_total":               99,
	}}
	got := PhaseDelta(before, after)
	want := map[string]int64{
		"machine_subset_states_total":   15,
		"machine_minimize_passes_total": 4,
		"supervisor_rung_entries_total": 2,
	}
	if len(got) != len(want) {
		t.Fatalf("delta = %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("delta[%s] = %d, want %d", k, got[k], v)
		}
	}
}
