package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"resilex/internal/extract"
	"resilex/internal/wrapper"
)

// e16BatchSize is the batch granularity of the batched mode: large enough to
// amortize pool startup, small enough that the run yields many latency
// samples for the percentile columns.
const e16BatchSize = 64

// E16Throughput measures the serving path on a repeated-wrapper workload —
// the shopbot steady state where every request names a wrapper the server
// has already seen. Three modes over the same document stream:
//
//	load/doc    the cache-disabled baseline: every document pays a full
//	            persisted-wrapper load (parse, compile, determinize)
//	cached/doc  wrapper.LoadCached through the compiled-artifact cache:
//	            one cold compile, then content-addressed hits
//	cached+batch the cache plus Fleet.ExtractBatch on a worker pool
//
// Per-document latency is measured directly in the sequential modes and
// amortized per batch in the batched mode. The speedup column is relative
// to the cache-disabled baseline in the same run.
func E16Throughput(docs, workers int, seed int64) Table {
	t := Table{
		ID:     "E16",
		Title:  "serving throughput: compiled-wrapper cache and batched extraction",
		Claim:  "runtime extension: content-addressed caching keeps automaton construction off the request path; repeated-wrapper serving gains ≥5× throughput",
		Header: []string{"mode", "docs/sec", "p50 µs", "p99 µs", "cache hit %", "speedup ×"},
	}
	w, err := wrapper.Train([]wrapper.Sample{
		{HTML: e15Top, Target: wrapper.TargetMarker()},
		{HTML: e15Bottom, Target: wrapper.TargetMarker()},
	}, wrapper.Config{Skip: []string{"BR"}, Options: DefaultOptions})
	if err != nil {
		panic(err)
	}
	payload, err := w.MarshalJSON()
	if err != nil {
		panic(err)
	}

	// The document stream: a seeded shuffle over the three Figure 1
	// layouts, so every mode sees the identical mixed workload.
	rng := rand.New(rand.NewSource(seed))
	layouts := []string{e15Top, e15Bottom, e15Novel}
	pages := make([]string, docs)
	for i := range pages {
		pages[i] = layouts[rng.Intn(len(layouts))]
	}

	row := func(mode string, durs []time.Duration, total time.Duration, hitRate, baseline float64) float64 {
		rate := float64(len(durs)) / total.Seconds()
		hit := "-"
		if hitRate >= 0 {
			hit = fmt.Sprintf("%.1f", 100*hitRate)
		}
		speedup := "1.0"
		if baseline > 0 {
			speedup = fmt.Sprintf("%.1f", rate/baseline)
		}
		t.Rows = append(t.Rows, []string{
			mode, fmt.Sprintf("%.0f", rate),
			fmt.Sprint(pctile(durs, 0.50).Microseconds()),
			fmt.Sprint(pctile(durs, 0.99).Microseconds()),
			hit, speedup,
		})
		return rate
	}

	// Mode 1 — cache-disabled baseline: full load per document.
	durs := make([]time.Duration, docs)
	start := time.Now()
	for i, page := range pages {
		s := time.Now()
		wi, err := wrapper.Load(payload, DefaultOptions)
		if err != nil {
			panic(err)
		}
		if _, err := wi.Extract(page); err != nil {
			panic(err)
		}
		durs[i] = time.Since(s)
	}
	baseline := row("load/doc", durs, time.Since(start), -1, 0)

	// Mode 2 — cached load per document: one miss, then hits.
	cache := extract.NewCache(16, DefaultObserver)
	start = time.Now()
	for i, page := range pages {
		s := time.Now()
		wi, err := wrapper.LoadCached(payload, DefaultOptions, cache)
		if err != nil {
			panic(err)
		}
		if _, err := wi.Extract(page); err != nil {
			panic(err)
		}
		durs[i] = time.Since(s)
	}
	row("cached/doc", durs, time.Since(start), cache.Stats().HitRate(), baseline)

	// Mode 3 — the full serving path: one cached fleet, batched parallel
	// extraction. Latency is amortized across each batch.
	fw, err := wrapper.LoadCached(payload, DefaultOptions, cache)
	if err != nil {
		panic(err)
	}
	fleet := wrapper.NewFleet()
	fleet.Add("vs", fw)
	batch := make([]wrapper.BatchDoc, 0, e16BatchSize)
	durs = durs[:0]
	ctx := contextWithObserver()
	start = time.Now()
	for at := 0; at < len(pages); at += e16BatchSize {
		end := min(at+e16BatchSize, len(pages))
		batch = batch[:0]
		for _, page := range pages[at:end] {
			batch = append(batch, wrapper.BatchDoc{Key: "vs", HTML: page})
		}
		s := time.Now()
		for _, res := range fleet.ExtractBatch(ctx, batch, wrapper.BatchOptions{Workers: workers}) {
			if res.Err != nil {
				panic(res.Err)
			}
		}
		per := time.Since(s) / time.Duration(len(batch))
		for range batch {
			durs = append(durs, per)
		}
	}
	row("cached+batch", durs, time.Since(start), cache.Stats().HitRate(), baseline)
	return t
}

// pctile returns the p-quantile (0 ≤ p ≤ 1, nearest-rank) of the samples.
func pctile(durs []time.Duration, p float64) time.Duration {
	if len(durs) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), durs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(p*float64(len(s)-1) + 0.5)
	return s[idx]
}
