package bench

import (
	"fmt"
	"reflect"
	"strings"
	"time"

	"resilex/internal/extract"
	"resilex/internal/htmltok"
	"resilex/internal/spanner"
)

// e22Sigma is the record-table vocabulary of the E22 pages.
var e22Sigma = []string{"TABLE", "/TABLE", "TR", "/TR", "TD", "/TD"}

// e22Src is the k-pivot record expression: k TD pivots separated by exact
// /TD gaps, free context on both sides — one extraction vector per
// k-column table row.
func e22Src(k int) string {
	return ".* <TD>" + strings.Repeat(" /TD <TD>", k-1) + " .*"
}

// e22Page builds a record table of rows rows with cols cells each.
func e22Page(rows, cols int) string {
	var b strings.Builder
	b.WriteString("<table>\n")
	for r := 0; r < rows; r++ {
		b.WriteString("<tr>")
		for c := 0; c < cols; c++ {
			fmt.Fprintf(&b, "<td>cell %d.%d</td>", r, c)
		}
		b.WriteString("</tr>\n")
	}
	b.WriteString("</table>")
	return b.String()
}

// E22Spanner compares the one-pass k-ary spanner (internal/spanner: all k
// pivots compiled into one multi-split automaton, every extraction vector
// enumerated from a single sweep) against the k-nested sequential baseline
// (spanner.NaiveTuples: one candidate scan per pivot level, every gap
// re-checked by a segment DFA run) on record tables of growing size, for
// arities 2 through 4. Both sides run warm over precompiled machinery, and
// their full vector enumerations are checked equal on every page before
// timing. The one-pass rows validate the serve-path claim: per-op cost
// grows with the page once, not once per pivot level, so the gap to the
// baseline widens with both k and the row count.
func E22Spanner(iters int) Table {
	t := Table{
		ID:     "E22",
		Title:  "k-ary spanner: one-pass multi-split automaton vs k-nested sequential passes",
		Claim:  "runtime extension: compiling k pivots into one multi-split product pass enumerates all extraction vectors in a single document sweep; the k-nested baseline re-scans per pivot level and falls behind superlinearly as k and the page grow",
		Header: []string{"k", "rows", "tokens", "vectors", "one-pass µs/op", "k-nested µs/op", "speedup"},
	}
	timeIt := func(n int, op func()) time.Duration {
		op() // warm: lazy tables, pools
		start := time.Now()
		for i := 0; i < n; i++ {
			op()
		}
		return time.Since(start) / time.Duration(n)
	}
	for _, k := range []int{2, 3, 4} {
		comp, err := extract.CompileTupleArtifact(e22Src(k), e22Sigma, DefaultOptions)
		if err != nil {
			panic(err)
		}
		prog, err := spanner.Compile(comp.Tuple, DefaultOptions)
		if err != nil {
			panic(err)
		}
		mapper := htmltok.NewMapper(comp.Tab)
		for _, rows := range []int{8, 64} {
			word := mapper.Map(e22Page(rows, k)).Syms
			m, err := prog.Run(word)
			if err != nil {
				panic(err)
			}
			got, err := m.All()
			if err != nil {
				panic(err)
			}
			want := spanner.NaiveTuples(comp.Tuple, word)
			if len(got) != rows || !reflect.DeepEqual(got, want) {
				panic(fmt.Sprintf("E22: k=%d rows=%d: one-pass %d vectors, baseline %d", k, rows, len(got), len(want)))
			}
			onePass := timeIt(iters, func() {
				mm, err := prog.Run(word)
				if err != nil {
					panic(err)
				}
				if _, err := mm.All(); err != nil {
					panic(err)
				}
			})
			// The baseline is the expensive side; amortize it over fewer
			// iterations so large-k rows stay affordable.
			nIters := iters/5 + 1
			nested := timeIt(nIters, func() {
				spanner.NaiveTuples(comp.Tuple, word)
			})
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(k), fmt.Sprint(rows), fmt.Sprint(len(word)), fmt.Sprint(len(got)),
				fmt.Sprintf("%.1f", float64(onePass.Nanoseconds())/1e3),
				fmt.Sprintf("%.1f", float64(nested.Nanoseconds())/1e3),
				fmt.Sprintf("%.1fx", float64(nested)/float64(onePass)),
			})
		}
	}
	return t
}
