package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"resilex/internal/cluster"
	"resilex/internal/obs"
	"resilex/internal/serve"
	"resilex/internal/wrapper"
)

// e18Docs is the documents per request in the cluster benchmark.
const e18Docs = 4

// capacityShard models a shard with finite request capacity: one in-flight
// POST /extract at a time, each paying a fixed simulated service time before
// the real (fast) extraction runs. On a single-CPU bench host the real
// handlers cannot demonstrate horizontal scaling — every shard shares the
// same core — so the win from sharding is made visible the way it is in
// production: N shards overlap N service times. The middleware wraps a real
// serve.Server; placement, replication, failover and extraction are all the
// genuine article.
type capacityShard struct {
	mux     http.Handler
	slots   chan struct{}
	service time.Duration
}

func (c *capacityShard) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost && r.URL.Path == "/extract" {
		c.slots <- struct{}{}
		time.Sleep(c.service)
		<-c.slots
	}
	c.mux.ServeHTTP(w, r)
}

// e18Config tunes one cluster run.
type e18Config struct {
	shards   int
	replicas int
	keys     int
	window   time.Duration // load-driving duration
	service  time.Duration // simulated per-request service time per shard
	killOne  bool          // kill the primary owner of key 0 mid-window
	hedge    time.Duration // router hedge delay (0 = off)
}

// e18Result is what one run measured.
type e18Result struct {
	requests  int
	failed    int
	durs      []time.Duration
	elapsed   time.Duration
	failovers int64
	hedges    int64
	downNodes int
}

// runClusterBench boots cfg.shards real in-process shard servers behind the
// capacity model, a failover-aware router over them, registers cfg.keys
// wrapper keys through the router (replicated to each key's owners), then
// drives one sequential request loop per key for cfg.window and reports
// what happened. With killOne the shard owning key 0 is killed halfway
// through the window without telling the router — requests riding on it
// must fail over to the surviving replica.
func runClusterBench(cfg e18Config, payload []byte) e18Result {
	o := obs.New()

	shards := make([]*httptest.Server, cfg.shards)
	peers := make([]string, cfg.shards)
	for i := range shards {
		s, err := serve.New(serve.Config{
			CacheCap: 64,
			Observer: nil, // per-shard telemetry is not under test here
			Options:  DefaultOptions,
			Batch:    wrapper.BatchOptions{Workers: 1},
		})
		if err != nil {
			panic(err)
		}
		shards[i] = httptest.NewServer(&capacityShard{
			mux:     s.Mux(),
			slots:   make(chan struct{}, 1),
			service: cfg.service,
		})
		peers[i] = shards[i].URL
	}
	defer func() {
		for _, s := range shards {
			s.Close()
		}
	}()

	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Peers:        peers,
		Replicas:     cfg.replicas,
		HedgeAfter:   cfg.hedge,
		ProxyTimeout: 5 * time.Second,
		Observer:     o,
	})
	if err != nil {
		panic(err)
	}
	front := httptest.NewServer(rt.Mux())
	defer front.Close()

	client := &http.Client{Timeout: 10 * time.Second}
	keys := make([]string, cfg.keys)
	for i := range keys {
		keys[i] = fmt.Sprintf("site-%03d", i)
		req, _ := http.NewRequest(http.MethodPut, front.URL+"/wrappers/"+keys[i], bytes.NewReader(payload))
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			panic(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			panic(fmt.Sprintf("cluster bench: registering %s: status %d", keys[i], resp.StatusCode))
		}
	}

	// Pre-marshal one request body per key (mixed layouts, single-key
	// batches — the router's placement unit).
	layouts := []string{e15Top, e15Bottom, e15Novel}
	bodies := make([][]byte, cfg.keys)
	for i, key := range keys {
		var buf bytes.Buffer
		buf.WriteString(`{"docs":[`)
		for d := 0; d < e18Docs; d++ {
			if d > 0 {
				buf.WriteByte(',')
			}
			doc, _ := json.Marshal(wrapper.BatchDoc{Key: key, HTML: layouts[(i+d)%len(layouts)]})
			buf.Write(doc)
		}
		buf.WriteString(`]}`)
		bodies[i] = buf.Bytes()
	}

	if cfg.killOne {
		victim := rt.Owners(keys[0])[0]
		for _, s := range shards {
			if s.URL == victim {
				time.AfterFunc(cfg.window/2, func() {
					s.CloseClientConnections()
					s.Close()
				})
			}
		}
	}

	// One sequential driver per key: a shopbot that never pipelines, so
	// per-shard concurrency equals the number of keys the shard owns.
	type tally struct {
		requests, failed int
		durs             []time.Duration
	}
	tallies := make([]tally, cfg.keys)
	deadline := time.Now().Add(cfg.window)
	start := time.Now()
	var wg sync.WaitGroup
	for i := range keys {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				s := time.Now()
				req, _ := http.NewRequest(http.MethodPost, front.URL+"/extract", bytes.NewReader(bodies[i]))
				req.Header.Set("Content-Type", "application/json")
				resp, err := client.Do(req)
				ok := err == nil && resp.StatusCode == http.StatusOK
				if resp != nil {
					resp.Body.Close()
				}
				tallies[i].requests++
				tallies[i].durs = append(tallies[i].durs, time.Since(s))
				if !ok {
					tallies[i].failed++
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := e18Result{elapsed: elapsed}
	for _, tl := range tallies {
		res.requests += tl.requests
		res.failed += tl.failed
		res.durs = append(res.durs, tl.durs...)
	}
	snap := o.Metrics.Snapshot()
	res.failovers = snap.Counters["cluster_failover_total"]
	res.hedges = snap.Counters["cluster_hedge_total"]
	res.downNodes = cfg.shards - rt.Health().UpCount()
	return res
}

// E18Cluster measures the sharded serving path: aggregate throughput and
// tail latency for 1, 2 and 4 shards behind the consistent-hash router
// (replication factor 1, so every shard carries a disjoint key range), then
// a failover run — 3 shards, replication factor 2, the primary owner of one
// key range killed mid-run — where the failed-request column must stay 0.
//
// Each shard admits one request at a time and pays a fixed simulated
// service time (the capacity model; see capacityShard), so the scaling win
// comes from overlapping service latency across shards — the production
// mechanism — rather than from CPU parallelism the single-core bench host
// does not have. Requests, placement, replication and failover all exercise
// the real internal/cluster + internal/serve stack over HTTP.
func E18Cluster(keys int, window, service time.Duration) Table {
	t := Table{
		ID:     "E18",
		Title:  "sharded cluster serving: consistent-hash placement, replicated registry, failover",
		Claim:  "cluster extension: consistent-hash sharding scales aggregate throughput near-linearly (≥2.5× at 4 shards) and R=2 replication serves every request through a shard kill (0 failed)",
		Header: []string{"shards", "R", "req/sec", "p50 ms", "p99 ms", "failed", "failovers", "speedup ×"},
	}
	w, err := wrapper.Train([]wrapper.Sample{
		{HTML: e15Top, Target: wrapper.TargetMarker()},
		{HTML: e15Bottom, Target: wrapper.TargetMarker()},
	}, wrapper.Config{Skip: []string{"BR"}, Options: DefaultOptions})
	if err != nil {
		panic(err)
	}
	payload, err := w.MarshalJSON()
	if err != nil {
		panic(err)
	}

	ms := func(d time.Duration) string { return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000) }
	row := func(label string, shards, replicas int, res e18Result, baseline float64) float64 {
		rate := float64(res.requests) / res.elapsed.Seconds()
		speedup := "1.0"
		if baseline > 0 {
			speedup = fmt.Sprintf("%.1f", rate/baseline)
		} else if label != "" {
			speedup = "-"
		}
		shown := fmt.Sprint(shards)
		if label != "" {
			shown = label
		}
		t.Rows = append(t.Rows, []string{
			shown, fmt.Sprint(replicas), fmt.Sprintf("%.0f", rate),
			ms(pctile(res.durs, 0.50)), ms(pctile(res.durs, 0.99)),
			fmt.Sprint(res.failed), fmt.Sprint(res.failovers), speedup,
		})
		return rate
	}

	var baseline float64
	for _, n := range []int{1, 2, 4} {
		res := runClusterBench(e18Config{
			shards: n, replicas: 1, keys: keys, window: window, service: service,
		}, payload)
		rate := row("", n, 1, res, baseline)
		if n == 1 {
			baseline = rate
		}
	}

	// The resilience run: kill a shard mid-window with hedging on. Failed
	// must be 0 — TestE18FailoverZeroFailedRequests asserts the same
	// property independently of the bench.
	res := runClusterBench(e18Config{
		shards: 3, replicas: 2, keys: keys, window: window, service: service,
		killOne: true, hedge: 20 * service,
	}, payload)
	row("3 (kill 1)", 3, 2, res, baseline)
	return t
}
