package extract

import (
	"testing"

	"resilex/internal/symtab"
)

// ambiguityCatalog pairs expressions with their expected ambiguity status.
// The first entries are the paper's own examples (Example 4.3, Section 3).
var ambiguityCatalog = []struct {
	src       string
	ambiguous bool
}{
	// Example 4.3: (pq)*⟨p⟩Σ* parses pqpq as ε·p·qpq and pq·p·q.
	{"(p q)* <p> .*", true},
	// Example 4.3: the (qp)* variant is unambiguous.
	{"(q p)* <p> .*", false},
	// Example 4.3: (p|pp)⟨p⟩(p|pp) parses pppp two ways.
	{"(p | p p) <p> (p | p p)", true},
	// Section 4: p*⟨p⟩q — any of the p's before the final q... only the last
	// p works because the suffix must be exactly q: unambiguous.
	{"p* <p> q", false},
	// Section 4 (text above Definition 4.2): p*⟨p⟩p* is ambiguous.
	{"p* <p> p*", true},
	// Section 3's generalized shopbot expression shape.
	{"[^ p]* <p> .*", false},
	// Degenerate components.
	{"<p>", false},
	{"#empty <p> .*", false}, // empty left: nothing ever parses, vacuously unambiguous
	{".* <p> .*", true},
	{"q <p> q", false},
	{"(q p)* q <p> q*", false},
	{"q? <p> p*", false},
	{"p? <p> p*", true},
	{"(p p)* <p> (p p)*", true},
	// Unambiguous despite the p-heavy components: the suffix must be exactly
	// one p, pinning the split to position |w|−1 with an even prefix.
	{"(p p)* <p> p", false},
	{"(p q | q) <p> (q p)*", false},
}

func TestUnambiguousCatalog(t *testing.T) {
	e := newTenv()
	for _, c := range ambiguityCatalog {
		x := e.expr(t, c.src, e.sigma2)
		got, err := x.Unambiguous()
		if err != nil {
			t.Fatalf("Unambiguous(%q): %v", c.src, err)
		}
		if got == c.ambiguous {
			t.Errorf("Unambiguous(%q) = %v, want %v", c.src, got, !c.ambiguous)
		}
	}
}

// Experiment E9: the two independent decision procedures (Propositions 5.4
// and 5.5) and a brute-force split-counting oracle must agree everywhere.
func TestUnambiguityAgreement(t *testing.T) {
	e := newTenv()
	marker := e.tab.Intern("MARK")
	words := allWords(e.sigma2, 6)
	for _, c := range ambiguityCatalog {
		x := e.expr(t, c.src, e.sigma2)
		factoring, err := x.Unambiguous()
		if err != nil {
			t.Fatal(err)
		}
		markerBased, err := x.UnambiguousMarker(marker)
		if err != nil {
			t.Fatal(err)
		}
		if factoring != markerBased {
			t.Errorf("%q: Prop 5.4 says %v, Prop 5.5 says %v", c.src, factoring, markerBased)
		}
		// Brute force: ambiguous iff some short word has ≥ 2 splits. (The
		// catalog is chosen so that ambiguity, when present, shows up within
		// length 6.)
		bruteAmbiguous := false
		for _, w := range words {
			if len(oracleSplits(x, w)) >= 2 {
				bruteAmbiguous = true
				break
			}
		}
		if bruteAmbiguous == factoring {
			t.Errorf("%q: oracle ambiguous=%v, Unambiguous=%v", c.src, bruteAmbiguous, factoring)
		}
	}
}

func TestUnambiguousMarkerRejectsInAlphabet(t *testing.T) {
	e := newTenv()
	x := e.expr(t, "q <p> q", e.sigma2)
	if _, err := x.UnambiguousMarker(e.q); err == nil {
		t.Error("marker inside Σ accepted")
	}
}

func TestAmbiguityWitness(t *testing.T) {
	e := newTenv()
	for _, c := range ambiguityCatalog {
		x := e.expr(t, c.src, e.sigma2)
		w, ok, err := x.AmbiguityWitness()
		if err != nil {
			t.Fatalf("AmbiguityWitness(%q): %v", c.src, err)
		}
		if ok != c.ambiguous {
			t.Errorf("AmbiguityWitness(%q) ok = %v, want %v", c.src, ok, c.ambiguous)
			continue
		}
		if ok {
			if splits := x.Splits(w); len(splits) < 2 {
				t.Errorf("witness %q for %q has %d splits, want ≥ 2",
					e.tab.String(w), c.src, len(splits))
			}
		}
	}
}

// The paper's Section 3 example: the witness for (pq)*⟨p⟩Σ* ambiguity is a
// string like pqpq, whose marked p can fall on position 0 or 2.
func TestSection3AmbiguityShape(t *testing.T) {
	e := newTenv()
	x := e.expr(t, "(p q)* <p> .*", e.sigma2)
	w := e.word(t, "p q p q")
	splits := x.Splits(w)
	if len(splits) != 2 || splits[0] != 0 || splits[1] != 2 {
		t.Errorf("splits of pqpq = %v, want [0 2]", splits)
	}
}

// Lemma 6.4(1): for expressions of the form E⟨p⟩Σ*, unambiguity coincides
// with emptiness of (E·p)\E and with E/(p·Σ*) ∩ E = ∅.
func TestLemma64Part1(t *testing.T) {
	e := newTenv()
	for _, src := range []string{"q p", "(q p)*", "p*", "q* p", "(p | p p)", "(q | q q)"} {
		x := e.expr(t, src+" <p> .*", e.sigma2)
		unamb, err := x.Unambiguous()
		if err != nil {
			t.Fatal(err)
		}
		gL, gR, err := x.gapLanguages()
		if err != nil {
			t.Fatal(err)
		}
		if !gR.IsUniversal() {
			t.Fatalf("%q: E2/(p·E2) should be Σ* when E2 = Σ*", src)
		}
		if gL.IsEmpty() != unamb {
			t.Errorf("%q: (E·p)\\E empty = %v, unambiguous = %v", src, gL.IsEmpty(), unamb)
		}
	}
}

func TestGapLanguagesShape(t *testing.T) {
	e := newTenv()
	// For E1 = p|pp, the left gap is {ε}: α = p, α·p·ε = pp ∈ E1.
	x := e.expr(t, "(p | p p) <p> q", e.sigma2)
	gL, _, err := x.gapLanguages()
	if err != nil {
		t.Fatal(err)
	}
	if !gL.Contains(nil) {
		t.Error("left gap should contain ε")
	}
	if gL.Contains([]symtab.Symbol{e.p}) {
		t.Error("left gap should not contain p")
	}
}
