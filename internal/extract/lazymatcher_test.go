package extract

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"resilex/internal/machine"
	"resilex/internal/symtab"
)

// tokenFixtures are the E1–E12 fixture expressions over the small test
// alphabets: every expression exercised by the experiment suite at the token
// level — E1/E2 closed forms and Expression (10), the E5/E6 maximization
// inputs and outputs (including the exact Algorithm 6.2 output of Example
// 4.7), the E7 pivot family, the E11 middle-row expression, and the E12
// factoring shapes.
var tokenFixtures = []struct {
	src   string
	sigma int // 2 = {p,q}, 3 = {p,q,r}
}{
	{"q* <p> .*", 2},
	{"<p> p*", 2},
	{"p* <p> p*", 2},
	{"(p q)* <p> .*", 2},
	{"(q p)* <p> .*", 2},
	{"(p | p p) <p> (p | p p)", 2},
	{". . <p> q", 2},
	{"[^ p]* <p> .*", 2},
	{"q <p> q", 2},
	{"p <p> p p p", 2},
	{"p p <p> p p", 2},
	{"q p <p> q*", 2},
	{"q p <p> .*", 2},
	{"[^ p]* p <p> .*", 2},
	{"((q* - q) | q p q*) <p> .*", 2}, // Example 4.7, Algorithm 6.2 output
	{"[^ p]* p [^ p]* <p> .*", 2},
	{"(q p)* q <p> q*", 2},
	{"[^ p]* <p> .*", 3},
	{"(q | r)* <p> (q | r)*", 3},
	{"q* r <p> r q*", 3},
}

// htmlFixtures are the E1/E2 fixtures over the Figure 1 tag alphabet.
var htmlFixtures = []string{
	"[^ FORM]* FORM [^ INPUT]* INPUT [^ INPUT]* <INPUT> .*", // Section 3 closed form
	"P H1 /H1 P FORM INPUT <INPUT> P INPUT INPUT /FORM",     // rigid doc1 expression
	"FORM INPUT <INPUT> .*",
	"(TR | TR TR) <TR> (TR | TR TR)", // E11 middle row
	"TR <TR> TR*",
}

func checkLazyAgrees(t *testing.T, x Expr, words [][]symtab.Symbol) {
	t.Helper()
	m, err := x.Compile()
	if err != nil {
		t.Fatal(err)
	}
	lm, err := x.CompileLazy()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range words {
		want := m.All(w)
		got, err := lm.All(w)
		if err != nil {
			t.Fatalf("lazy All(%v): %v", w, err)
		}
		if len(got) != len(want) {
			t.Fatalf("on %v: lazy %v, eager %v", w, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("on %v: lazy %v, eager %v", w, got, want)
			}
		}
		wantPos, wantOK := m.Find(w)
		gotPos, gotOK, err := lm.Find(w)
		if err != nil || gotOK != wantOK || (wantOK && gotPos != wantPos) {
			t.Fatalf("Find on %v: lazy %d,%v,%v; eager %d,%v", w, gotPos, gotOK, err, wantPos, wantOK)
		}
	}
}

// TestLazyMatcherEquivalenceTokenFixtures sweeps every token-level E1–E12
// fixture expression over all words up to length 6 (length 5 for Σ={p,q,r})
// plus random longer words: the lazy matcher must agree with the eager
// two-scan matcher everywhere.
func TestLazyMatcherEquivalenceTokenFixtures(t *testing.T) {
	e := newTenv()
	words2 := allWords(e.sigma2, 6)
	words3 := allWords(e.sigma3, 5)
	rng := rand.New(rand.NewSource(41))
	randWords := func(sigma symtab.Alphabet) [][]symtab.Symbol {
		syms := sigma.Symbols()
		var out [][]symtab.Symbol
		for i := 0; i < 40; i++ {
			w := make([]symtab.Symbol, 7+rng.Intn(30))
			for j := range w {
				w[j] = syms[rng.Intn(len(syms))]
			}
			out = append(out, w)
		}
		return out
	}
	for _, f := range tokenFixtures {
		f := f
		t.Run(f.src, func(t *testing.T) {
			sigma, words := e.sigma2, words2
			if f.sigma == 3 {
				sigma, words = e.sigma3, words3
			}
			x := e.expr(t, f.src, sigma)
			checkLazyAgrees(t, x, append(words, randWords(sigma)...))
		})
	}
}

// TestLazyMatcherEquivalenceHTMLFixtures replays the E1/E2/E11 documents —
// plus out-of-Σ and perturbed variants — through the HTML-level fixtures.
func TestLazyMatcherEquivalenceHTMLFixtures(t *testing.T) {
	h := newHTMLEnv()
	docs := [][]symtab.Symbol{
		h.doc(t, fig1Doc1),
		h.doc(t, fig1Doc2),
		h.doc(t, "TR TR TR"),
		h.doc(t, "TR TR"),
		h.doc(t, "FORM INPUT INPUT /FORM"),
		nil,
	}
	// An out-of-Σ symbol anywhere must reject in both matchers identically.
	out := h.tab.Intern("BLINK")
	docs = append(docs, append(h.doc(t, fig1Doc1), out))
	withMid := append([]symtab.Symbol{}, h.doc(t, fig1Doc1)...)
	withMid[3] = out
	docs = append(docs, withMid)
	for _, src := range htmlFixtures {
		src := src
		t.Run(src, func(t *testing.T) {
			x, err := Parse(src, h.tab, h.sigma, machine.Options{})
			if err != nil {
				t.Fatal(err)
			}
			checkLazyAgrees(t, x, docs)
		})
	}
}

// TestLazyMatcherSynthesized covers the nil-AST path: maximized expressions
// are synthesized (no retained syntax), so CompileLazy falls back to the
// component DFAs.
func TestLazyMatcherSynthesized(t *testing.T) {
	e := newTenv()
	maxed, err := Maximize(e.expr(t, "q p <p> .*", e.sigma2))
	if err != nil {
		t.Fatal(err)
	}
	if maxed.LeftAST() != nil {
		t.Skip("maximized expression unexpectedly retained syntax")
	}
	checkLazyAgrees(t, maxed, allWords(e.sigma2, 6))
}

// TestLazyMatcherBudgetAndDeadline: the lazy matcher inherits the
// expression's budget/deadline discipline at match time.
func TestLazyMatcherBudgetAndDeadline(t *testing.T) {
	e := newTenv()
	// The PSPACE witness suffix forces subset blowup at match time.
	plain, err := Parse("<p> .* p . . . . . . . . . .", e.tab, e.sigma2, machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lm, err := plain.WithOptions(machine.Options{MaxStates: 4}).CompileLazy()
	if err != nil {
		t.Fatal(err)
	}
	w := make([]symtab.Symbol, 64)
	for i := range w {
		w[i] = e.q
		if i%3 == 0 {
			w[i] = e.p
		}
	}
	if _, err := lm.All(w); !errors.Is(err, machine.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dead, err := Parse("q* <p> .*", e.tab, e.sigma2, machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dead.WithOptions(machine.Options{Ctx: ctx}).CompileLazy(); !errors.Is(err, machine.ErrDeadline) {
		t.Fatalf("CompileLazy err = %v, want ErrDeadline", err)
	}
}
