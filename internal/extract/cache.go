package extract

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"resilex/internal/machine"
	"resilex/internal/obs"
	"resilex/internal/rx"
	"resilex/internal/symtab"
)

// Compiled is a cache entry: everything a serving path needs to run one
// persisted expression — the symbol table the artifact was compiled against
// (concurrency-safe, shared by every borrower), the parsed expression, and
// its compiled matcher. Src and SigmaNames record the persisted form the
// artifact was compiled from; EncodeArtifact embeds them so a decoded
// artifact can re-derive its content address and its ASTs without
// re-determinizing anything. Compiled values are immutable after
// construction and safe for concurrent use.
type Compiled struct {
	Tab        *symtab.Table
	Expr       Expr
	Matcher    *Matcher
	Src        string
	SigmaNames []string
}

// Key returns the content address of a persisted expression: a hex SHA-256
// over the alphabet fingerprint (sorted symbol names) and the canonical
// fingerprints of both component ASTs (union operands sorted, symbol ids
// assigned deterministically from the sorted name set). Two persisted
// wrappers that differ only in union operand order, alphabet listing order,
// or the symbol tables they were written from therefore share one key — and
// one compilation.
func Key(src string, sigmaNames []string) (string, error) {
	names := append([]string(nil), sigmaNames...)
	sort.Strings(names)
	names = dedupSorted(names)
	// Interning the sorted names into a fresh table makes symbol ids — and
	// with them rx.Fingerprint — a pure function of the name set.
	tab := symtab.NewTable()
	sigma := symtab.NewAlphabet(tab.InternAll(names...)...)
	m, err := rx.ParseMarked(src, tab, sigma)
	if err != nil {
		return "", fmt.Errorf("extract: cache key: %w", err)
	}
	h := sha256.New()
	fmt.Fprintf(h, "v1|sigma=%s|p=%s|left=%s|right=%s",
		strings.Join(names, ","), tab.Name(m.P), rx.Fingerprint(m.Left), rx.Fingerprint(m.Right))
	return hex.EncodeToString(h.Sum(nil)), nil
}

func dedupSorted(names []string) []string {
	out := names[:0]
	for i, n := range names {
		if i == 0 || n != names[i-1] {
			out = append(out, n)
		}
	}
	return out
}

// CacheStats is a point-in-time view of cache effectiveness. HitRate is in
// [0,1]; it reads 0 before the first lookup.
type CacheStats struct {
	Hits, Misses, Evictions int64
	Entries                 int
}

// HitRate returns Hits/(Hits+Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Cache is a content-addressed LRU of compiled extraction artifacts with
// singleflight admission: concurrent misses on one key block on a single
// compilation instead of compiling in parallel, so a thundering herd of
// requests for a cold wrapper costs one determinization, not N.
//
// Lookups maintain the counters extract_cache_hits_total,
// extract_cache_misses_total and extract_cache_evictions_total and the gauge
// extract_cache_entries on the observer given to NewCache (nil-safe no-ops
// without one); Stats reads the same numbers without an observer. A Cache is
// safe for concurrent use.
type Cache struct {
	capacity int

	hits, misses, evictions atomic.Int64

	obsHits, obsMisses, obsEvictions *obs.Counter
	obsEntries                       *obs.Gauge

	mu       sync.Mutex
	ll       *list.List // front = most recently used
	entries  map[string]*list.Element
	inflight map[string]*flight
}

type cacheEntry struct {
	key string
	val *Compiled
}

type flight struct {
	done chan struct{}
	val  *Compiled
	err  error
}

// NewCache returns an empty cache holding at most capacity compiled
// artifacts (minimum 1). The observer receives the hit/miss/eviction
// counters and entry gauge; pass nil to run unobserved.
func NewCache(capacity int, o *obs.Observer) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		capacity:     capacity,
		obsHits:      o.Counter("extract_cache_hits_total"),
		obsMisses:    o.Counter("extract_cache_misses_total"),
		obsEvictions: o.Counter("extract_cache_evictions_total"),
		obsEntries:   o.Gauge("extract_cache_entries"),
		ll:           list.New(),
		entries:      map[string]*list.Element{},
		inflight:     map[string]*flight{},
	}
}

// Get returns the artifact cached under key, refreshing its recency, or
// ok=false on a miss. Get never blocks on an in-flight compilation.
func (c *Cache) Get(key string) (*Compiled, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses.Add(1)
		c.obsMisses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Add(1)
	c.obsHits.Inc()
	return el.Value.(*cacheEntry).val, true
}

// GetOrCompile returns the artifact cached under key, compiling and
// admitting it via compile on a miss. Concurrent callers that miss on the
// same key share one compile call (singleflight): the first caller runs it,
// the rest block and receive its result — including its error. Errors are
// not cached; the next miss retries.
func (c *Cache) GetOrCompile(key string, compile func() (*Compiled, error)) (*Compiled, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.hits.Add(1)
		c.obsHits.Inc()
		v := el.Value.(*cacheEntry).val
		c.mu.Unlock()
		return v, nil
	}
	if f, ok := c.inflight[key]; ok {
		// Someone else is compiling this key; joining their flight counts as
		// a hit — no compilation work happens on this call.
		c.hits.Add(1)
		c.obsHits.Inc()
		c.mu.Unlock()
		<-f.done
		return f.val, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.misses.Add(1)
	c.obsMisses.Inc()
	c.mu.Unlock()

	f.val, f.err = compile()

	c.mu.Lock()
	delete(c.inflight, key)
	if f.err == nil {
		c.addLocked(key, f.val)
	}
	c.mu.Unlock()
	close(f.done)
	return f.val, f.err
}

// addLocked admits one artifact, evicting from the LRU tail past capacity.
func (c *Cache) addLocked(key string, val *Compiled) {
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).val = val
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.capacity {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.entries, tail.Value.(*cacheEntry).key)
		c.evictions.Add(1)
		c.obsEvictions.Inc()
	}
	c.obsEntries.Set(int64(c.ll.Len()))
}

// Evict removes the artifact cached under key, counting it as an eviction.
// It reports whether the key was resident. An in-flight compilation of the
// same key is unaffected: it completes and re-admits its result. Borrowers
// that already hold the *Compiled keep a valid value — eviction only drops
// the cache's reference.
func (c *Cache) Evict(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return false
	}
	c.ll.Remove(el)
	delete(c.entries, key)
	c.evictions.Add(1)
	c.obsEvictions.Inc()
	c.obsEntries.Set(int64(c.ll.Len()))
	return true
}

// Flush evicts every resident artifact and returns how many were dropped.
// Like Evict it never interrupts an in-flight compilation and never
// invalidates values already handed out — it is the operational "cold the
// cache now" lever (and the eviction seam the API-sequence fuzz harness
// drives between extractions).
func (c *Cache) Flush() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.ll.Len()
	c.ll.Init()
	clear(c.entries)
	c.evictions.Add(int64(n))
	c.obsEvictions.Add(int64(n))
	c.obsEntries.Set(0)
	return n
}

// Load is the serving-path entry point: the artifact for the persisted
// expression src over the alphabet sigmaNames, compiled at most once per
// content address. opt bounds the compilation of this call only — the cached
// artifact is stored with any deadline stripped, so one request's context
// never expires another request's cache entry.
func (c *Cache) Load(src string, sigmaNames []string, opt machine.Options) (*Compiled, error) {
	key, err := Key(src, sigmaNames)
	if err != nil {
		return nil, err
	}
	return c.GetOrCompile(key, func() (*Compiled, error) {
		return CompileArtifact(src, sigmaNames, opt)
	})
}

// Len returns the number of cached artifacts.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns the cache's lifetime hit/miss/eviction counts and current
// size.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	entries := c.ll.Len()
	c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   entries,
	}
}

// CompileArtifact compiles a persisted expression into a shareable artifact:
// a fresh symbol table, the parsed expression, and its matcher. The budget
// and deadline in opt bound the compilation; the stored expression keeps the
// budget but drops the deadline, since the artifact outlives the request
// that happened to compile it.
func CompileArtifact(src string, sigmaNames []string, opt machine.Options) (*Compiled, error) {
	tab := symtab.NewTable()
	sigma := symtab.NewAlphabet(tab.InternAll(sigmaNames...)...)
	expr, err := Parse(src, tab, sigma, opt)
	if err != nil {
		return nil, err
	}
	m, err := expr.Compile()
	if err != nil {
		return nil, err
	}
	expr.opt = opt.WithoutContext()
	expr.mc.once.Do(func() { expr.mc.m = m })
	return &Compiled{
		Tab: tab, Expr: expr, Matcher: m,
		Src: src, SigmaNames: append([]string(nil), sigmaNames...),
	}, nil
}
