package extract

import (
	"errors"
	"fmt"

	"resilex/internal/codec"
	"resilex/internal/lang"
	"resilex/internal/machine"
	"resilex/internal/rx"
	"resilex/internal/symtab"
)

// artifactMagic / artifactVersion frame a persisted compiled artifact: the
// expression source, its alphabet, the symbol table it was compiled against,
// and the component minimal DFAs — everything the serving path needs to
// rebuild a Compiled without determinizing. Version 2 prefixes the payload
// with a kind discriminator so one frame format carries both single-pivot
// and k-ary (tuple) artifacts; version-1 frames (kindless single-pivot
// payloads) still decode. Bump the version on any payload change; the disk
// cache discards unknown versions and recompiles.
const (
	artifactMagic         = "RXAR"
	artifactVersion       = 2
	artifactVersionLegacy = 1

	artifactKindSingle = 0 // E1⟨p⟩E2, two component DFAs
	artifactKindTuple  = 1 // E0⟨p1⟩…⟨pk⟩Ek, k+1 segment DFAs (see tupleartifact.go)
)

// EncodeArtifact serializes a compiled artifact into a framed binary blob
// (magic, format version, SHA-256 checksum — see internal/codec). The blob
// carries the expression *source* for cheap re-parsing plus the component
// minimal DFAs, so DecodeArtifact skips exactly the worst-case-exponential
// work: subset construction. Artifacts produced by CompileArtifact always
// encode; synthesized Compiled values missing their source are rejected.
func EncodeArtifact(c *Compiled) ([]byte, error) {
	if c == nil || c.Src == "" || c.Tab == nil {
		return nil, fmt.Errorf("extract: encoding artifact: no persisted source (artifact not built by CompileArtifact)")
	}
	left, right := c.Expr.Left().DFA(), c.Expr.Right().DFA()
	if left == nil || right == nil {
		return nil, fmt.Errorf("extract: encoding artifact: expression has no compiled components")
	}
	var w codec.Writer
	w.Uint(artifactKindSingle)
	w.String(c.Src)
	w.Uint(uint64(len(c.SigmaNames)))
	for _, n := range c.SigmaNames {
		w.String(n)
	}
	w.Bytes2(c.Tab.Encode())
	w.Int(int64(c.Expr.P()))
	sigma := c.Expr.Sigma().Symbols()
	ids := make([]int, len(sigma))
	for i, s := range sigma {
		ids[i] = int(s)
	}
	w.Ints(ids)
	w.Bytes2(left.Encode())
	w.Bytes2(right.Encode())
	return codec.Seal(artifactMagic, artifactVersion, w.Bytes()), nil
}

// DecodeArtifact restores a compiled artifact under opt's budget and
// deadline. The restore path re-parses the embedded source (linear), decodes
// the component DFAs, re-minimizes them (polynomial on already-minimal
// input) and rebuilds the matcher's predecessor tables (linear) — no subset
// construction runs, which is the entire point of persisting artifacts.
//
// Decode never panics on corrupt input: frame damage, checksum mismatches
// and structural inconsistencies — a table that does not match the source's
// interning order, a marked symbol or alphabet that disagrees with the
// re-parse, component DFAs over the wrong Σ — all return an error wrapping
// codec.ErrMalformedInput. The checksum ties the DFAs to the encode-time
// machines against corruption; it is not a defense against an adversary who
// can write the cache directory.
func DecodeArtifact(blob []byte, opt machine.Options) (*Compiled, error) {
	payload, err := codec.Open(artifactMagic, artifactVersion, blob)
	if err != nil {
		// Version-1 frames predate the kind discriminator and are always
		// single-pivot; keep them decodable so a cache directory written by
		// an older binary warms a newer one.
		if errors.Is(err, codec.ErrVersionMismatch) {
			if legacy, lerr := codec.Open(artifactMagic, artifactVersionLegacy, blob); lerr == nil {
				return decodeSingleArtifact(codec.NewReader(legacy), opt)
			}
		}
		return nil, fmt.Errorf("extract: decoding artifact: %w", err)
	}
	r := codec.NewReader(payload)
	switch kind := r.Uint(); {
	case r.Err() != nil:
		return nil, fmt.Errorf("extract: decoding artifact: %w", r.Err())
	case kind == artifactKindTuple:
		return nil, fmt.Errorf("extract: decoding artifact: %w: frame holds a k-ary tuple artifact; use DecodeTupleArtifact", codec.ErrMalformedInput)
	case kind != artifactKindSingle:
		return nil, fmt.Errorf("extract: decoding artifact: %w: unknown artifact kind %d", codec.ErrMalformedInput, kind)
	}
	return decodeSingleArtifact(r, opt)
}

// decodeSingleArtifact reads the single-pivot payload body — identical in
// v1 frames and after the v2 kind byte.
func decodeSingleArtifact(r *codec.Reader, opt machine.Options) (*Compiled, error) {
	src := r.String()
	nNames := r.Len()
	if r.Err() != nil {
		return nil, fmt.Errorf("extract: decoding artifact: %w", r.Err())
	}
	sigmaNames := make([]string, 0, min(nNames, 1024))
	for i := 0; i < nNames && r.Err() == nil; i++ {
		sigmaNames = append(sigmaNames, r.String())
	}
	tabBlob := r.Bytes2()
	p := symtab.Symbol(r.Int())
	sigmaIDs := r.Ints()
	leftBlob := r.Bytes2()
	rightBlob := r.Bytes2()
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("extract: decoding artifact: %w", err)
	}

	tab, err := symtab.DecodeTable(tabBlob)
	if err != nil {
		return nil, fmt.Errorf("extract: decoding artifact: %w", err)
	}
	// Re-derive the table from the persisted source exactly the way
	// CompileArtifact built it. The persisted table must match — this pins
	// every symbol id in the decoded DFAs to the name the source meant, so a
	// decoded artifact can never silently bind ids to different tokens.
	rederived := symtab.NewTable()
	sigma := symtab.NewAlphabet(rederived.InternAll(sigmaNames...)...)
	m, err := rx.ParseMarked(src, rederived, sigma)
	if err != nil {
		return nil, fmt.Errorf("extract: decoding artifact: %w: embedded source does not parse: %v", codec.ErrMalformedInput, err)
	}
	if !tab.EqualNames(rederived) {
		return nil, fmt.Errorf("extract: decoding artifact: %w: persisted table disagrees with re-derived interning", codec.ErrMalformedInput)
	}
	if m.P != p {
		return nil, fmt.Errorf("extract: decoding artifact: %w: marked symbol %d disagrees with source (%d)", codec.ErrMalformedInput, p, m.P)
	}
	full := m.Sigma.Union(m.Left.Symbols()).Union(m.Right.Symbols()).With(m.P)
	want := full.Symbols()
	if len(want) != len(sigmaIDs) {
		return nil, fmt.Errorf("extract: decoding artifact: %w: alphabet disagrees with source", codec.ErrMalformedInput)
	}
	for i, s := range want {
		if int(s) != sigmaIDs[i] {
			return nil, fmt.Errorf("extract: decoding artifact: %w: alphabet disagrees with source", codec.ErrMalformedInput)
		}
	}

	leftDFA, err := machine.DecodeDFA(leftBlob)
	if err != nil {
		return nil, fmt.Errorf("extract: decoding artifact: left component: %w", err)
	}
	rightDFA, err := machine.DecodeDFA(rightBlob)
	if err != nil {
		return nil, fmt.Errorf("extract: decoding artifact: right component: %w", err)
	}
	if !leftDFA.Sigma.Equal(full) || !rightDFA.Sigma.Equal(full) {
		return nil, fmt.Errorf("extract: decoding artifact: %w: component DFA over wrong Σ", codec.ErrMalformedInput)
	}
	stored := opt.WithoutContext()
	// The checksum ties these DFAs byte-for-byte to the canonical minimal
	// machines EncodeArtifact read out of a Language, so they re-enter the
	// Language invariant directly — no re-minimization, keeping decode
	// linear in the artifact size.
	leftLang := lang.FromMinimalDFA(leftDFA, opt)
	rightLang := lang.FromMinimalDFA(rightDFA, opt)

	e := New(leftLang.WithOptions(stored), p, rightLang.WithOptions(stored))
	e.opt = stored
	e.leftAST, e.rightAST = m.Left, m.Right
	matcher, err := e.Compile()
	if err != nil {
		return nil, fmt.Errorf("extract: decoding artifact: %w", err)
	}
	e.mc.once.Do(func() { e.mc.m = matcher })
	return &Compiled{
		Tab: tab, Expr: e, Matcher: matcher,
		Src: src, SigmaNames: sigmaNames,
	}, nil
}
