package extract

import (
	"container/list"
	"context"
	"os"
	"sync"
	"time"

	"resilex/internal/machine"
	"resilex/internal/obs"
)

// TupleArtifactCache is the k-ary counterpart of ArtifactCache: the
// contract the wrapper layer loads tuple wrappers through. *TieredCache
// implements it; tuple and single-pivot artifacts share one key space
// (KeyTuple is domain-separated from Key) and one disk directory.
type TupleArtifactCache interface {
	LoadTuple(src string, sigmaNames []string, opt machine.Options) (*CompiledTuple, error)
}

// GetTuple loads and decodes the tuple artifact stored under key with the
// same recency, integrity, and corruption handling as Get: undecodable
// blobs and blobs whose content re-keys differently are deleted and counted
// corrupt + miss.
func (d *DiskCache) GetTuple(key string, opt machine.Options) (*CompiledTuple, bool) {
	path, err := d.keyPath(key)
	if err != nil {
		d.miss()
		return nil, false
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		d.miss()
		return nil, false
	}
	c, err := DecodeTupleArtifact(blob, opt)
	if err == nil {
		rekey, kerr := KeyTuple(c.Src, c.SigmaNames)
		if kerr != nil || rekey != key {
			err = errTupleRekey
		}
	}
	if err != nil {
		d.mu.Lock()
		os.Remove(path)
		d.mu.Unlock()
		d.corrupt.Add(1)
		d.obsCorrupt.Inc()
		d.miss()
		d.obsEntries.Set(int64(d.countEntries()))
		return nil, false
	}
	now := time.Now()
	os.Chtimes(path, now, now) // best-effort LRU recency bump
	d.hits.Add(1)
	d.obsHits.Inc()
	return c, true
}

var errTupleRekey = &rekeyError{}

type rekeyError struct{}

func (*rekeyError) Error() string {
	return "extract: disk cache: tuple artifact content does not match its key"
}

// PutTuple encodes the tuple artifact and stores it under key with Put's
// atomicity and eviction behavior; tuple blobs count against the same
// capacity as single-pivot ones.
func (d *DiskCache) PutTuple(key string, c *CompiledTuple) error {
	if d.capacity == 0 {
		return nil
	}
	blob, err := EncodeTupleArtifact(c)
	if err != nil {
		return err
	}
	return d.putBlob(key, blob)
}

// tupleMemCache is the in-memory tuple tier: an LRU with singleflight
// admission mirroring Cache, private to TieredCache. It shares the memory
// tier's capacity and stays unobserved — per-tier traffic is attributed by
// LoadTupleCtx through extract_tiered_load_total like every other load.
type tupleMemCache struct {
	capacity int

	mu       sync.Mutex
	ll       *list.List
	entries  map[string]*list.Element
	inflight map[string]*tupleFlight
}

type tupleMemEntry struct {
	key string
	val *CompiledTuple
}

type tupleFlight struct {
	done chan struct{}
	val  *CompiledTuple
	err  error
}

func newTupleMemCache(capacity int) *tupleMemCache {
	if capacity < 1 {
		capacity = 1
	}
	return &tupleMemCache{
		capacity: capacity,
		ll:       list.New(),
		entries:  map[string]*list.Element{},
		inflight: map[string]*tupleFlight{},
	}
}

// getOrCompile mirrors Cache.GetOrCompile: one compile per key across
// concurrent misses, errors not cached. The second return reports whether
// the value came from residency (or a joined flight) rather than this
// caller's own compile call.
func (c *tupleMemCache) getOrCompile(key string, compile func() (*CompiledTuple, error)) (*CompiledTuple, bool, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		v := el.Value.(*tupleMemEntry).val
		c.mu.Unlock()
		return v, true, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-f.done
		return f.val, true, f.err
	}
	f := &tupleFlight{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	f.val, f.err = compile()

	c.mu.Lock()
	delete(c.inflight, key)
	if f.err == nil {
		if el, ok := c.entries[key]; ok {
			c.ll.MoveToFront(el)
			el.Value.(*tupleMemEntry).val = f.val
		} else {
			c.entries[key] = c.ll.PushFront(&tupleMemEntry{key: key, val: f.val})
			for c.ll.Len() > c.capacity {
				tail := c.ll.Back()
				c.ll.Remove(tail)
				delete(c.entries, tail.Value.(*tupleMemEntry).key)
			}
		}
	}
	c.mu.Unlock()
	close(f.done)
	return f.val, false, f.err
}

func (c *tupleMemCache) flush() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.ll.Len()
	c.ll.Init()
	clear(c.entries)
	return n
}

func (c *tupleMemCache) evict(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return false
	}
	c.ll.Remove(el)
	delete(c.entries, key)
	return true
}

// LoadTuple returns the compiled tuple artifact for the persisted k-ary
// expression src over sigmaNames: memory → disk → compile, with write-
// through, mirroring Load. opt bounds this call's work only.
func (t *TieredCache) LoadTuple(src string, sigmaNames []string, opt machine.Options) (*CompiledTuple, error) {
	c, _, err := t.loadTupleTier(src, sigmaNames, opt)
	return c, err
}

// LoadTupleCtx is LoadTuple under the same "cache.lookup" phase, tier
// counter, and tier-note plumbing as LoadCtx.
func (t *TieredCache) LoadTupleCtx(ctx context.Context, src string, sigmaNames []string, opt machine.Options) (*CompiledTuple, error) {
	ctx, ph := obs.StartPhase(ctx, "cache.lookup")
	c, tier, err := t.loadTupleTier(src, sigmaNames, opt)
	ph.Str("tier", tier)
	ph.Fail(err)
	ph.Count(obs.WithLabels("extract_tiered_load_total", "tier", tier), 1)
	ph.End()
	if slot, ok := ctx.Value(tierNoteKey{}).(*string); ok {
		*slot = tier
	}
	return c, err
}

func (t *TieredCache) loadTupleTier(src string, sigmaNames []string, opt machine.Options) (*CompiledTuple, string, error) {
	key, err := KeyTuple(src, sigmaNames)
	if err != nil {
		return nil, TierMemory, err
	}
	tier := TierMemory
	c, resident, err := t.tupleMem.getOrCompile(key, func() (*CompiledTuple, error) {
		if t.disk != nil {
			if c, ok := t.disk.GetTuple(key, opt); ok {
				tier = TierDisk
				return c, nil
			}
		}
		tier = TierCompile
		c, err := CompileTupleArtifact(src, sigmaNames, opt)
		if err == nil && t.disk != nil {
			t.disk.PutTuple(key, c) //nolint:errcheck // best-effort write-through
		}
		return c, err
	})
	if resident {
		tier = TierMemory
	}
	return c, tier, err
}

// EvictTuple removes the tuple artifact cached in memory under the content
// address of (src, sigmaNames), reporting whether it was resident. The disk
// tier is untouched.
func (t *TieredCache) EvictTuple(src string, sigmaNames []string) bool {
	key, err := KeyTuple(src, sigmaNames)
	if err != nil {
		return false
	}
	return t.tupleMem.evict(key)
}
