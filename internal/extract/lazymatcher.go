package extract

import (
	"fmt"

	"resilex/internal/lang"
	"resilex/internal/machine"
	"resilex/internal/obs"
	"resilex/internal/rx"
	"resilex/internal/symtab"
)

// LazyMatcher is the on-the-fly counterpart of Matcher: both component
// automata are machine.LazyDFA values, so no determinization happens at
// compile time — subset states materialize as documents actually visit them,
// bounded by the expression's Options.MaxStates budget. The suffix test runs
// the lazy DFA of reverse(E2) right to left (word[i:] ∈ L(E2) iff the
// reversal of word[i:] is in the reversal of L(E2)), which keeps the
// backward sweep a single deterministic state per position, exactly like the
// forward one.
//
// Compared with Matcher the per-document cost is the same O(n·|Σ|) after
// warm-up, but construction is O(|E|) instead of worst-case exponential —
// the right trade when an expression serves few documents, or must start
// serving before a full determinization would finish. Matching can now fail
// (budget or deadline), so All and Find return errors where Matcher's
// cannot. A LazyMatcher is safe for concurrent use.
type LazyMatcher struct {
	p      symtab.Symbol
	fwd    *machine.LazyDFA // E1, scanned left to right
	bwdRev *machine.LazyDFA // reverse(E2), scanned right to left
	sigma  symtab.Alphabet
}

// CompileLazy builds the lazy matcher for the expression. When the
// expression retains component syntax (anything built by Parse or FromAST)
// the NFAs come straight from Thompson's construction on the ASTs; synthetic
// expressions fall back to the components' existing minimal DFAs, which
// still keeps the reverse automaton lazy. Construction never determinizes.
func (e Expr) CompileLazy() (*LazyMatcher, error) {
	if err := e.opt.Err(); err != nil {
		return nil, fmt.Errorf("%w: lazy matcher compilation", err)
	}
	_, ph := obs.StartPhase(e.opt.Ctx, "extract.lazy_matcher_compile")
	defer ph.End()
	fwd, err := e.componentNFA(e.leftAST, e.left)
	if err != nil {
		return nil, err
	}
	right, err := e.componentNFA(e.rightAST, e.right)
	if err != nil {
		return nil, err
	}
	ph.Attr("fwd_nfa_states", int64(fwd.NumStates()))
	ph.Attr("bwd_nfa_states", int64(right.NumStates()))
	ph.Count("extract_lazy_matcher_compiles_total", 1)
	return &LazyMatcher{
		p:      e.p,
		fwd:    machine.NewLazy(fwd, e.opt),
		bwdRev: machine.NewLazy(right.Reverse(), e.opt),
		sigma:  e.sigma,
	}, nil
}

func (e Expr) componentNFA(ast *rx.Node, l lang.Language) (*machine.NFA, error) {
	if ast != nil {
		return machine.Compile(ast, e.sigma, e.opt)
	}
	return machine.FromDFA(l.DFA()), nil
}

// P returns the marked symbol the matcher extracts.
func (m *LazyMatcher) P() symtab.Symbol { return m.p }

// All returns every valid extraction position in the word, ascending —
// Matcher.All with lazy automata. The error is non-nil exactly when a lazy
// materialization exceeds the state budget (wrapping machine.ErrBudget) or
// the expression's deadline expires (wrapping machine.ErrDeadline).
func (m *LazyMatcher) All(word []symtab.Symbol) ([]int, error) {
	n := len(word)
	// suffixOK[i]: word[i:] ∈ L(E2), via a right-to-left run of reverse(E2).
	// An out-of-Σ symbol drives the state to -1, which is sticky: every
	// suffix containing it rejects.
	suffixOK := make([]bool, n+1)
	state := m.bwdRev.Start()
	suffixOK[n] = m.bwdRev.Accepting(state)
	for i := n - 1; i >= 0; i-- {
		if state >= 0 {
			var err error
			state, err = m.bwdRev.Step(state, word[i])
			if err != nil {
				return nil, err
			}
		}
		suffixOK[i] = state >= 0 && m.bwdRev.Accepting(state)
	}
	// Forward scan of E1, collecting positions where both tests meet on a p.
	var out []int
	fs := m.fwd.Start()
	for i := 0; i < n; i++ {
		if fs >= 0 && word[i] == m.p && m.fwd.Accepting(fs) && suffixOK[i+1] {
			out = append(out, i)
		}
		if fs >= 0 {
			var err error
			fs, err = m.fwd.Step(fs, word[i])
			if err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// Find returns the leftmost valid extraction position, ok=false when the
// expression does not parse the word. Error cases are those of All.
func (m *LazyMatcher) Find(word []symtab.Symbol) (pos int, ok bool, err error) {
	all, err := m.All(word)
	if err != nil || len(all) == 0 {
		return -1, false, err
	}
	return all[0], true, nil
}

// States reports how many subset states the two lazy automata have
// materialized so far — the working-set size this matcher's traffic paid
// for, versus the full determinization Matcher would have paid up front.
func (m *LazyMatcher) States() int {
	return m.fwd.NumStates() + m.bwdRev.NumStates()
}
