package extract

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"resilex/internal/machine"
)

func mustCompile(t *testing.T, src string, names []string) *Compiled {
	t.Helper()
	c, err := CompileArtifact(src, names, machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mustKey(t *testing.T, c *Compiled) string {
	t.Helper()
	k, err := Key(c.Src, c.SigmaNames)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// artifactPath returns the single on-disk artifact file, for tests that
// corrupt it in place.
func artifactPath(t *testing.T, d *DiskCache) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(d.Dir(), "*"+artifactExt))
	if err != nil || len(matches) != 1 {
		t.Fatalf("want exactly one artifact on disk, got %v (%v)", matches, err)
	}
	return matches[0]
}

func TestDiskCacheRoundTrip(t *testing.T) {
	d, err := NewDiskCache(t.TempDir(), -1, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := mustCompile(t, "q* <p> .*", []string{"p", "q"})
	key := mustKey(t, c)
	if _, ok := d.Get(key, machine.Options{}); ok {
		t.Fatal("hit on empty cache")
	}
	if err := d.Put(key, c); err != nil {
		t.Fatal(err)
	}
	got, ok := d.Get(key, machine.Options{})
	if !ok {
		t.Fatal("miss after Put")
	}
	if got.Src != c.Src || !machine.StructurallyEqual(got.Expr.Left().DFA(), c.Expr.Left().DFA()) {
		t.Fatal("decoded artifact differs")
	}
	s := d.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Corrupt != 0 || s.Entries != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestDiskCacheCapacityZero: a capacity-0 tier stores nothing — every Put is
// dropped without error and every Get misses.
func TestDiskCacheCapacityZero(t *testing.T) {
	d, err := NewDiskCache(t.TempDir(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := mustCompile(t, "q* <p> .*", []string{"p", "q"})
	key := mustKey(t, c)
	if err := d.Put(key, c); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 {
		t.Fatalf("capacity-0 cache holds %d entries", d.Len())
	}
	if _, ok := d.Get(key, machine.Options{}); ok {
		t.Fatal("capacity-0 cache returned a hit")
	}
	if s := d.Stats(); s.Misses != 1 || s.Hits != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestDiskCacheCapacityOne: with capacity 1 the older artifact (by
// modification time, refreshed on Get) is evicted as soon as a second one
// lands.
func TestDiskCacheCapacityOne(t *testing.T) {
	d, err := NewDiskCache(t.TempDir(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := mustCompile(t, "q* <p> .*", []string{"p", "q"})
	b := mustCompile(t, "<p> p*", []string{"p", "q"})
	ka, kb := mustKey(t, a), mustKey(t, b)
	if err := d.Put(ka, a); err != nil {
		t.Fatal(err)
	}
	// Make a strictly older than any later write even on coarse-mtime
	// filesystems.
	old := artifactPath(t, d)
	past := time.Now().Add(-time.Hour)
	os.Chtimes(old, past, past)
	if err := d.Put(kb, b); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 {
		t.Fatalf("capacity-1 cache holds %d entries", d.Len())
	}
	if _, ok := d.Get(ka, machine.Options{}); ok {
		t.Fatal("evicted artifact still served")
	}
	if _, ok := d.Get(kb, machine.Options{}); !ok {
		t.Fatal("resident artifact missed")
	}
	if s := d.Stats(); s.Evictions != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestDiskCacheStaleVersionRecompiled: a blob written by a previous format
// version is discarded (counted corrupt) and the caller recompiles — the
// upgrade story for persisted caches.
func TestDiskCacheStaleVersionRecompiled(t *testing.T) {
	d, err := NewDiskCache(t.TempDir(), -1, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := mustCompile(t, "q p <p> q*", []string{"p", "q"})
	key := mustKey(t, c)
	if err := d.Put(key, c); err != nil {
		t.Fatal(err)
	}
	path := artifactPath(t, d)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[4]-- // pretend a prior format version wrote this file
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get(key, machine.Options{}); ok {
		t.Fatal("stale-version blob served")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("stale-version blob not deleted")
	}
	s := d.Stats()
	if s.Corrupt != 1 || s.Misses != 1 || s.Entries != 0 {
		t.Fatalf("stats = %+v", s)
	}
	// The tier recovers: the recompiled artifact is re-admitted and served.
	if err := d.Put(key, c); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get(key, machine.Options{}); !ok {
		t.Fatal("re-put artifact missed")
	}
}

// TestDiskCacheTornWriteRecovered: a truncated blob — the on-disk shape of a
// torn write that survived a hard crash on a filesystem without atomic
// rename durability — is discarded, never served, never panics.
func TestDiskCacheTornWriteRecovered(t *testing.T) {
	d, err := NewDiskCache(t.TempDir(), -1, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := mustCompile(t, "q p <p> q*", []string{"p", "q"})
	key := mustKey(t, c)
	if err := d.Put(key, c); err != nil {
		t.Fatal(err)
	}
	path := artifactPath(t, d)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 3, len(blob) / 2, len(blob) - 1} {
		if err := os.WriteFile(path, blob[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := d.Get(key, machine.Options{}); ok {
			t.Fatalf("torn blob of %d bytes served", n)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("torn blob of %d bytes not deleted", n)
		}
	}
	if s := d.Stats(); s.Corrupt != 4 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestDiskCacheKeyMismatchDiscarded: a blob that decodes fine but whose
// content hashes to a different key — a renamed or cross-wired cache file —
// is treated as corrupt, so a hit always returns the artifact the key names.
func TestDiskCacheKeyMismatchDiscarded(t *testing.T) {
	d, err := NewDiskCache(t.TempDir(), -1, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := mustCompile(t, "q* <p> .*", []string{"p", "q"})
	b := mustCompile(t, "<p> p*", []string{"p", "q"})
	ka, kb := mustKey(t, a), mustKey(t, b)
	if err := d.Put(ka, a); err != nil {
		t.Fatal(err)
	}
	// Cross-wire: b's blob under a's key.
	blob, err := EncodeArtifact(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(d.Dir(), ka+artifactExt), blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get(ka, machine.Options{}); ok {
		t.Fatal("cross-wired blob served")
	}
	if s := d.Stats(); s.Corrupt != 1 {
		t.Fatalf("stats = %+v", s)
	}
	_ = kb
}

func TestDiskCacheRejectsBadKeys(t *testing.T) {
	d, err := NewDiskCache(t.TempDir(), -1, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := mustCompile(t, "q* <p> .*", []string{"p", "q"})
	for _, key := range []string{"", "../escape", "a/b", "a.b", string(make([]byte, 200))} {
		if err := d.Put(key, c); err == nil {
			t.Errorf("Put(%q) accepted", key)
		}
		if _, ok := d.Get(key, machine.Options{}); ok {
			t.Errorf("Get(%q) hit", key)
		}
	}
	if d.Len() != 0 {
		t.Fatalf("bad keys created %d entries", d.Len())
	}
}
