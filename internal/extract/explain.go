package extract

import (
	"fmt"
	"strings"

	"resilex/internal/symtab"
)

// Diagnosis is a structured health report for an extraction expression —
// everything the theory can say about it in one pass. Produce with
// Expr.Explain; render with Diagnosis.Format.
type Diagnosis struct {
	// Unambiguous per Definition 4.2.
	Unambiguous bool
	// AmbiguityWitness is a string with ≥ 2 valid extraction positions (set
	// only when ambiguous).
	AmbiguityWitness []symtab.Symbol
	// WitnessPositions are the valid positions on the witness.
	WitnessPositions []int
	// Maximal per Definition 4.5 (meaningful only when Unambiguous).
	Maximal bool
	// Defect is a string that could be adjoined on DefectSide while staying
	// unambiguous (set only when unambiguous but not maximal).
	Defect     []symtab.Symbol
	DefectSide string
	// BoundedMarks reports whether the prefix matches a bounded number of
	// marked symbols (the Algorithm 6.2 applicability condition); Bound is
	// the maximum when bounded.
	BoundedMarks bool
	Bound        int
	// Streamable reports whether the suffix is Σ*, enabling single-pass
	// extraction.
	Streamable bool
}

// Explain runs the full battery of decision procedures on the expression.
// Budget errors from the automata layer abort with an error rather than a
// partial report.
func (e Expr) Explain() (Diagnosis, error) {
	var d Diagnosis
	unamb, err := e.Unambiguous()
	if err != nil {
		return Diagnosis{}, err
	}
	d.Unambiguous = unamb
	if !unamb {
		w, ok, err := e.AmbiguityWitness()
		if err != nil {
			return Diagnosis{}, err
		}
		if ok {
			d.AmbiguityWitness = w
			d.WitnessPositions = e.Splits(w)
		}
	} else {
		m, err := e.Maximal()
		if err != nil {
			return Diagnosis{}, err
		}
		d.Maximal = m
		if !m {
			rho, side, ok, err := e.MaximalityDefect()
			if err != nil {
				return Diagnosis{}, err
			}
			if ok {
				d.Defect = rho
				d.DefectSide = side
			}
		}
	}
	d.Bound, d.BoundedMarks = e.left.MaxOccurrences(e.p)
	d.Streamable = e.right.IsUniversal()
	return d, nil
}

// Format renders the diagnosis as a short human-readable report.
func (d Diagnosis) Format(tab *symtab.Table) string {
	var b strings.Builder
	fmt.Fprintf(&b, "unambiguous: %v\n", d.Unambiguous)
	if !d.Unambiguous {
		if d.AmbiguityWitness != nil {
			fmt.Fprintf(&b, "  witness: %s (positions %v)\n",
				tab.String(d.AmbiguityWitness), d.WitnessPositions)
		}
		return b.String()
	}
	fmt.Fprintf(&b, "maximal:     %v\n", d.Maximal)
	if !d.Maximal && d.DefectSide != "" {
		fmt.Fprintf(&b, "  defect: %q can be adjoined on the %s side\n",
			tab.String(d.Defect), d.DefectSide)
	}
	if d.BoundedMarks {
		fmt.Fprintf(&b, "marked-symbol bound in prefix: %d (Algorithm 6.2 applies)\n", d.Bound)
	} else {
		b.WriteString("prefix matches unboundedly many marked symbols (pivot framework required)\n")
	}
	fmt.Fprintf(&b, "streamable (suffix = Σ*): %v\n", d.Streamable)
	return b.String()
}
