package extract

import (
	"testing"

	"resilex/internal/lang"
	"resilex/internal/machine"
	"resilex/internal/rx"
	"resilex/internal/symtab"
)

// tenv is the shared two/three-symbol test environment.
type tenv struct {
	tab     *symtab.Table
	p, q, r symtab.Symbol
	sigma2  symtab.Alphabet // {p, q}
	sigma3  symtab.Alphabet // {p, q, r}
}

func newTenv() tenv {
	tab := symtab.NewTable()
	p, q, r := tab.Intern("p"), tab.Intern("q"), tab.Intern("r")
	return tenv{tab, p, q, r, symtab.NewAlphabet(p, q), symtab.NewAlphabet(p, q, r)}
}

func (e tenv) expr(t *testing.T, src string, sigma symtab.Alphabet) Expr {
	t.Helper()
	x, err := Parse(src, e.tab, sigma, machine.Options{})
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return x
}

func (e tenv) word(t *testing.T, src string) []symtab.Symbol {
	t.Helper()
	w, err := rx.ParseWord(src, e.tab)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// oracleSplits computes valid split positions directly from the definition.
func oracleSplits(x Expr, w []symtab.Symbol) []int {
	var out []int
	for i := range w {
		if w[i] == x.P() && x.Left().Contains(w[:i]) && x.Right().Contains(w[i+1:]) {
			out = append(out, i)
		}
	}
	return out
}

func allWords(sigma symtab.Alphabet, maxLen int) [][]symtab.Symbol {
	syms := sigma.Symbols()
	out := [][]symtab.Symbol{nil}
	prev := [][]symtab.Symbol{nil}
	for l := 0; l < maxLen; l++ {
		var next [][]symtab.Symbol
		for _, w := range prev {
			for _, s := range syms {
				next = append(next, append(append([]symtab.Symbol(nil), w...), s))
			}
		}
		out = append(out, next...)
		prev = next
	}
	return out
}

func TestParseAndAccessors(t *testing.T) {
	e := newTenv()
	x := e.expr(t, "q* <p> .*", e.sigma2)
	if x.P() != e.p {
		t.Errorf("P = %v", x.P())
	}
	if !x.Sigma().Equal(e.sigma2) {
		t.Errorf("Sigma = %v", x.Sigma().Symbols())
	}
	if x.LeftAST() == nil || x.RightAST() == nil {
		t.Error("ASTs not retained from Parse")
	}
	if !x.Left().Contains(nil) || !x.Left().Contains(e.word(t, "q q")) {
		t.Error("Left language wrong")
	}
	if !x.Right().IsUniversal() {
		t.Error("Right should be Σ*")
	}
}

func TestSplitsAgainstOracle(t *testing.T) {
	e := newTenv()
	exprs := []string{
		"q* <p> .*",
		"<p> p*",
		"p* <p> p*",
		"(p q)* <p> .*",
		"(q p)* <p> .*",
		"(p | p p) <p> (p | p p)",
		". . <p> q",
		"[^ p]* <p> .*",
	}
	words := allWords(e.sigma2, 6)
	for _, src := range exprs {
		x := e.expr(t, src, e.sigma2)
		for _, w := range words {
			want := oracleSplits(x, w)
			got := x.Splits(w)
			if len(got) != len(want) {
				t.Fatalf("%q on %q: Splits = %v, oracle %v", src, e.tab.String(w), got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%q on %q: Splits = %v, oracle %v", src, e.tab.String(w), got, want)
				}
			}
			pos, ok := x.Extract(w)
			if ok != (len(want) > 0) || (ok && pos != want[0]) {
				t.Fatalf("%q on %q: Extract = (%d,%v), oracle %v", src, e.tab.String(w), pos, ok, want)
			}
			if x.Parses(w) != (len(want) > 0) {
				t.Fatalf("%q on %q: Parses disagrees with oracle", src, e.tab.String(w))
			}
		}
	}
}

func TestExtractForeignSymbols(t *testing.T) {
	e := newTenv()
	x := e.expr(t, "q* <p> .*", e.sigma2)
	// r is outside this expression's Σ; words containing it never parse.
	w := []symtab.Symbol{e.q, e.r, e.p}
	if x.Parses(w) {
		t.Error("parsed word with foreign symbol")
	}
	if got := x.Splits(w); len(got) != 0 {
		t.Errorf("Splits = %v", got)
	}
}

func TestLanguageOfExpr(t *testing.T) {
	e := newTenv()
	x := e.expr(t, "q <p> q", e.sigma2)
	l, err := x.Language()
	if err != nil {
		t.Fatal(err)
	}
	if !l.Contains(e.word(t, "q p q")) || l.Contains(e.word(t, "q q")) {
		t.Error("Language() wrong")
	}
}

// The paper's note under Definition 4.4: p⟨p⟩ppp and pp⟨p⟩pp parse exactly
// the same language but extract different objects; neither generalizes the
// other, and they are not Equal.
func TestSameLanguageDifferentExtraction(t *testing.T) {
	e := newTenv()
	a := e.expr(t, "p <p> p p p", e.sigma2)
	b := e.expr(t, "p p <p> p p", e.sigma2)
	la, err := a.Language()
	if err != nil {
		t.Fatal(err)
	}
	lb, err := b.Language()
	if err != nil {
		t.Fatal(err)
	}
	if !la.Equal(lb) {
		t.Fatal("parsed languages should coincide")
	}
	w := e.word(t, "p p p p p")
	pa, _ := a.Extract(w)
	pb, _ := b.Extract(w)
	if pa != 1 || pb != 2 {
		t.Errorf("extractions = %d, %d; want 1, 2", pa, pb)
	}
	if a.Equal(b) {
		t.Error("Equal despite different components")
	}
	if g, err := a.Generalizes(b); err != nil || g {
		t.Errorf("a ⪰ b = %v, %v", g, err)
	}
	if g, err := b.Generalizes(a); err != nil || g {
		t.Errorf("b ⪰ a = %v, %v", g, err)
	}
}

func TestPartialOrder(t *testing.T) {
	e := newTenv()
	small := e.expr(t, "q p <p> q*", e.sigma2)
	big := e.expr(t, "q p <p> .*", e.sigma2)
	bigger := e.expr(t, "[^ p]* p <p> .*", e.sigma2)
	// Reflexivity.
	if g, _ := small.Generalizes(small); !g {
		t.Error("⪯ not reflexive")
	}
	// small ⪯ big ⪯ bigger (transitivity checked by direct comparison).
	if g, _ := big.Generalizes(small); !g {
		t.Error("big should generalize small")
	}
	if g, _ := bigger.Generalizes(big); !g {
		t.Error("bigger should generalize big")
	}
	if g, _ := bigger.Generalizes(small); !g {
		t.Error("⪯ not transitive")
	}
	if g, _ := small.Generalizes(big); g {
		t.Error("⪯ not antisymmetric-strict")
	}
	// Distinct marked symbols are incomparable.
	other := e.expr(t, "q p <q> .*", e.sigma2)
	if g, _ := other.Generalizes(small); g {
		t.Error("expressions with different marks compared")
	}
}

func TestNewFromLanguages(t *testing.T) {
	e := newTenv()
	left, err := lang.Parse("q*", e.tab, e.sigma2, machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	right := lang.Universal(e.sigma2, machine.Options{})
	x := New(left, e.p, right)
	if x.LeftAST() != nil {
		t.Error("synthesized expression should have no AST")
	}
	if pos, ok := x.Extract(e.word(t, "q q p p")); !ok || pos != 2 {
		t.Errorf("Extract = %d, %v", pos, ok)
	}
}

func TestStringRendering(t *testing.T) {
	e := newTenv()
	x := e.expr(t, "q* <p> .*", e.sigma2)
	s := x.String(e.tab)
	if s != "q* <p> .*" {
		t.Errorf("String = %q", s)
	}
	// A reparse of the rendering denotes the same expression.
	y := e.expr(t, s, e.sigma2)
	if !x.Equal(y) {
		t.Errorf("String round trip changed the expression: %q", s)
	}
	// Epsilon components are elided.
	x = e.expr(t, "<p>", e.sigma2)
	if got := x.String(e.tab); got != "<p>" {
		t.Errorf("bare mark String = %q", got)
	}
	// Synthesized expressions render from their DFAs.
	left, _ := lang.Parse("q | q q", e.tab, e.sigma2, machine.Options{})
	z := New(left, e.p, lang.Universal(e.sigma2, machine.Options{}))
	zs := z.String(e.tab)
	y, err := Parse(zs, e.tab, e.sigma2, machine.Options{})
	if err != nil {
		t.Fatalf("reparse of synthesized rendering %q: %v", zs, err)
	}
	if !z.Equal(y) {
		t.Errorf("synthesized rendering %q does not round trip", zs)
	}
}

func TestSizeMeasure(t *testing.T) {
	e := newTenv()
	a := e.expr(t, "<p>", e.sigma2)
	b := e.expr(t, "(q p)* q <p> q*", e.sigma2)
	if a.Size() >= b.Size() {
		t.Errorf("Size ordering wrong: %d vs %d", a.Size(), b.Size())
	}
}

func TestMatcherReuse(t *testing.T) {
	e := newTenv()
	x := e.expr(t, "[^ p]* <p> .*", e.sigma3)
	m, err := x.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if m.P() != e.p {
		t.Error("Matcher.P wrong")
	}
	for _, w := range allWords(e.sigma3, 4) {
		want := oracleSplits(x, w)
		got := m.All(w)
		if len(got) != len(want) {
			t.Fatalf("Matcher.All(%q) = %v, oracle %v", e.tab.String(w), got, want)
		}
	}
}

func TestMustParseAndOptions(t *testing.T) {
	e := newTenv()
	x := MustParse("q <p> .*", e.tab, e.sigma2)
	if x.Options().MaxStates != 0 {
		t.Errorf("Options = %+v", x.Options())
	}
	defer func() {
		if recover() == nil {
			t.Error("MustParse on bad input did not panic")
		}
	}()
	MustParse("(((", e.tab, e.sigma2)
}

func TestExtendSides(t *testing.T) {
	e := newTenv()
	x := e.expr(t, "q <p> q", e.sigma2)
	l, err := x.Extend(e.word(t, "q q"), "left")
	if err != nil {
		t.Fatal(err)
	}
	if !l.Left().Contains(e.word(t, "q q")) || l.Right().Contains(e.word(t, "q q")) {
		t.Error("left extension wrong")
	}
	// Any other side string extends the right.
	r, err := x.Extend(e.word(t, "q q"), "right")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Right().Contains(e.word(t, "q q")) || r.Left().Contains(e.word(t, "q q")) {
		t.Error("right extension wrong")
	}
	// Words with foreign symbols are rejected.
	if _, err := x.Extend([]symtab.Symbol{99}, "left"); err == nil {
		t.Error("foreign extension accepted")
	}
}
