package extract

import (
	"sync"
	"testing"

	"resilex/internal/machine"
)

// TestTieredEvictRacesStreamingSession pins the memory-safety contract
// between cache eviction and pooled streaming sessions: evicting (or
// flushing) an artifact from the memory tier while StreamRun sessions
// borrowed from that artifact's StreamMatcher are mid-feed must neither
// race nor corrupt results. Eviction only drops the cache's reference — a
// session keeps its own, and a concurrent re-Load decodes a *fresh*
// artifact from disk whose sessions must agree answer-for-answer with the
// evicted one's. Run under -race (the race job does) this is the
// regression test for evict-while-StreamRun-pooled.
func TestTieredEvictRacesStreamingSession(t *testing.T) {
	disk, err := NewDiskCache(t.TempDir(), -1, nil)
	if err != nil {
		t.Fatal(err)
	}
	tc := NewTieredCache(NewCache(2, nil), disk)
	src, names := "q* r <p> r q*", []string{"p", "q", "r"}
	key, err := Key(src, names)
	if err != nil {
		t.Fatal(err)
	}
	c0, err := tc.Load(src, names, machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	word := c0.Tab.InternAll("q", "q", "r", "p", "r", "q")
	wantPos, wantOK := c0.Matcher.Find(word)
	if !wantOK {
		t.Fatalf("fixture word does not extract: %v", word)
	}

	const streamers, rounds = 6, 200
	var evictor, wg sync.WaitGroup
	stop := make(chan struct{})
	evictor.Add(1)
	go func() { // evictor: keep yanking the artifact out from under the sessions
		defer evictor.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%3 == 0 {
				tc.FlushMem()
			} else {
				tc.Mem().Evict(key)
			}
		}
	}()
	for g := 0; g < streamers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				c, err := tc.Load(src, names, machine.Options{})
				if err != nil {
					t.Errorf("load under eviction: %v", err)
					return
				}
				sm, err := c.Expr.CompileStream()
				if err != nil {
					t.Errorf("stream compile under eviction: %v", err)
					return
				}
				run := sm.Get(FindLeftmost)
				for _, sym := range word {
					run.Feed(sym)
				}
				pos, ok := run.Find()
				sm.Put(run)
				if ok != wantOK || pos != wantPos {
					t.Errorf("streaming find under eviction = (%d,%v), want (%d,%v)", pos, ok, wantPos, wantOK)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	evictor.Wait()
}
