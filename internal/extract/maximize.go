package extract

import (
	"fmt"

	"resilex/internal/lang"
	"resilex/internal/machine"
	"resilex/internal/obs"
	"resilex/internal/rx"
	"resilex/internal/symtab"
)

// LeftFilter runs Algorithm 6.2 (left-filtering maximization). Input: an
// unambiguous E⟨p⟩E2 whose prefix component matches a bounded number of p's
// and whose right side can be widened to Σ* — i.e. (E·p)\E = ∅, which holds
// automatically when E2 = Σ* (Lemma 6.4(1)). Output: a maximal unambiguous
// E'⟨p⟩Σ* generalizing E⟨p⟩Σ* (Proposition 6.5), where
//
//	F   = E/(p·Σ*)                      (p-prefixes of E)
//	R₀  = (Σ−p)* − F‖p,0
//	Rᵢ  = F‖p,i−1 · p · (Σ−p)* − F‖p,i   (i ≥ 1, while F‖p,i−1 ≠ ∅)
//	E'  = E + ΣRᵢ
//
// Errors: ErrAmbiguous, ErrUnbounded (E matches unboundedly many p's, the
// loop would not terminate), ErrNotApplicable ((E·p)\E ≠ ∅ so E⟨p⟩Σ* itself
// would be ambiguous), or a budget error from the automata layer.
func LeftFilter(e Expr) (_ Expr, err error) {
	var rounds int64
	ctx, ph := obs.StartPhase(e.opt.Ctx, "extract.left_filter")
	if ph != nil {
		e.opt.Ctx = ctx // nested machine spans parent under this phase
	}
	defer func() {
		ph.Attr("rounds", rounds)
		ph.Count("extract_leftfilter_rounds_total", rounds)
		ph.End()
	}()
	if unamb, err := e.Unambiguous(); err != nil {
		return Expr{}, err
	} else if !unamb {
		return Expr{}, ErrAmbiguous
	}
	E := e.left
	p := e.p
	sigma := e.sigma
	opt := e.opt

	pOnly, err := lang.Single([]symtab.Symbol{p}, sigma, opt)
	if err != nil {
		return Expr{}, err
	}
	// Widening precondition: (E·p)\E = ∅ (Section 6, first paragraph).
	ep, err := E.Concat(pOnly)
	if err != nil {
		return Expr{}, err
	}
	gap, err := E.LeftFactor(ep)
	if err != nil {
		return Expr{}, err
	}
	if !gap.IsEmpty() {
		return Expr{}, fmt.Errorf("%w: (E·p)\\E ≠ ∅, widening the right side to Σ* would be ambiguous", ErrNotApplicable)
	}
	// Termination precondition: E‖p,n = ∅ for some n (Lemma 6.4(4,5)).
	if _, bounded := E.MaxOccurrences(p); !bounded {
		return Expr{}, ErrUnbounded
	}
	// F = E/(p·Σ*): the proper prefixes of E-words ending just before a p.
	univ := lang.Universal(sigma, opt)
	F, err := E.MarkedPrefixes(p)
	if err != nil {
		return Expr{}, err
	}
	noP := sigmaMinusPStar(sigma, p, opt)
	// S := (Σ−p)* − F‖p,0
	f0, err := F.FilterCount(p, 0)
	if err != nil {
		return Expr{}, err
	}
	S, err := noP.Minus(f0)
	if err != nil {
		return Expr{}, err
	}
	// while F‖p,n ≠ ∅: S += F‖p,n · p · (Σ−p)* − F‖p,n+1
	fn := f0
	for n := 0; !fn.IsEmpty(); n++ {
		rounds++
		fnext, err := F.FilterCount(p, n+1)
		if err != nil {
			return Expr{}, err
		}
		grown, err := fn.Concat(pOnly)
		if err != nil {
			return Expr{}, err
		}
		grown, err = grown.Concat(noP)
		if err != nil {
			return Expr{}, err
		}
		ri, err := grown.Minus(fnext)
		if err != nil {
			return Expr{}, err
		}
		S, err = S.Union(ri)
		if err != nil {
			return Expr{}, err
		}
		fn = fnext
	}
	Eprime, err := E.Union(S)
	if err != nil {
		return Expr{}, err
	}
	out := New(Eprime, p, univ)
	out.opt = opt
	return out, nil
}

// RightFilter is the mirror image of Algorithm 6.2: it widens the *left*
// side to Σ* (precondition E2\(p·E2) = ∅) and maximizes the suffix
// component. It is implemented by reversal — every definition in the paper
// is mirror-symmetric — and returns a maximal unambiguous Σ*⟨p⟩E2'.
func RightFilter(e Expr) (Expr, error) {
	rev, err := e.reverse()
	if err != nil {
		return Expr{}, err
	}
	maxRev, err := LeftFilter(rev)
	if err != nil {
		return Expr{}, err
	}
	return maxRev.reverse()
}

// reverse returns E2ᴿ⟨p⟩E1ᴿ, the mirror image of the expression.
func (e Expr) reverse() (Expr, error) {
	lrev, err := e.left.Reverse()
	if err != nil {
		return Expr{}, err
	}
	rrev, err := e.right.Reverse()
	if err != nil {
		return Expr{}, err
	}
	out := New(rrev, e.p, lrev)
	out.opt = e.opt
	return out, nil
}

// sigmaMinusPStar returns (Σ−p)*.
func sigmaMinusPStar(sigma symtab.Alphabet, p symtab.Symbol, opt machine.Options) lang.Language {
	l, err := lang.FromRegex(rx.Star(rx.Class(sigma.Without(p))), sigma, opt.WithoutContext())
	if err != nil {
		panic(err) // two-state automaton; cannot exceed any budget, no deadline
	}
	return l
}
