package extract

import (
	"errors"
	"testing"

	"resilex/internal/machine"
	"resilex/internal/rx"
	"resilex/internal/symtab"
)

// htmlEnv builds the tag alphabet of the Figure 1 / Section 7 example.
type htmlEnv struct {
	tab   *symtab.Table
	sigma symtab.Alphabet
	input symtab.Symbol
}

func newHTMLEnv() htmlEnv {
	tab := symtab.NewTable()
	syms := tab.InternAll(
		"P", "H1", "/H1", "FORM", "/FORM", "INPUT", "BR",
		"TABLE", "/TABLE", "TR", "/TR", "TD", "/TD", "TH", "/TH", "IMG", "A", "/A",
	)
	return htmlEnv{tab: tab, sigma: symtab.NewAlphabet(syms...), input: tab.Lookup("INPUT")}
}

// The two Figure 1 documents in the tag-sequence abstraction of Section 3.
const (
	fig1Doc1 = "P H1 /H1 P FORM INPUT INPUT P INPUT INPUT /FORM"
	fig1Doc2 = "TABLE TR TH IMG /TH /TR TR TD H1 /H1 /TD /TR TR TD A /A /TD /TR " +
		"TR TD FORM INPUT INPUT INPUT INPUT /FORM /TD /TR /TABLE"
)

// The target is the second INPUT element of the form: index 6 in doc1.
func (h htmlEnv) doc(t *testing.T, s string) []symtab.Symbol {
	t.Helper()
	w, err := rx.ParseWord(s, h.tab)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestFigure1Generalization reproduces the Section 3 story: the generalized
// expression (Tags−FORM)*·FORM·(Tags−INPUT)*·INPUT·(Tags−INPUT)*⟨INPUT⟩Tags*
// matches both the original and the rearranged page and identifies the
// second INPUT of the form in each. (Experiment E1.)
func TestFigure1Generalization(t *testing.T) {
	h := newHTMLEnv()
	x, err := Parse("[^ FORM]* FORM [^ INPUT]* INPUT [^ INPUT]* <INPUT> .*",
		h.tab, h.sigma, machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	unamb, err := x.Unambiguous()
	if err != nil || !unamb {
		t.Fatalf("Section 3 expression should be unambiguous (%v, %v)", unamb, err)
	}
	m, err := x.Maximal()
	if err != nil || !m {
		t.Fatalf("Section 3 expression should be maximal (%v, %v)", m, err)
	}

	doc1 := h.doc(t, fig1Doc1)
	pos, ok := x.Extract(doc1)
	if !ok || h.tab.Name(doc1[pos]) != "INPUT" || pos != 6 {
		t.Errorf("doc1 extraction = (%d, %v), want the second INPUT at 6", pos, ok)
	}
	doc2 := h.doc(t, fig1Doc2)
	pos2, ok := x.Extract(doc2)
	if !ok || pos2 != 22 {
		t.Errorf("doc2 extraction = (%d, %v), want the second INPUT at 22", pos2, ok)
	}

	// The rigid single-document expressions fail on the other document —
	// this is the brittleness the paper motivates with.
	rigid1, err := Parse("P H1 /H1 P FORM INPUT <INPUT> P INPUT INPUT /FORM",
		h.tab, h.sigma, machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rigid1.Extract(doc1); !ok {
		t.Error("rigid expression must match its own document")
	}
	if _, ok := rigid1.Extract(doc2); ok {
		t.Error("rigid expression unexpectedly survived the redesign")
	}
}

// The merge heuristic of Section 7 aligns the common FORM INPUT ... INPUT
// anchors; the faithful Expression (10) with optional in-between segments:
const section7Expr10 = "((P H1 /H1 P) | (TABLE TR TH IMG /TH /TR TR TD H1 /H1 /TD /TR TR TD A /A /TD /TR TR TD)) " +
	"FORM INPUT <INPUT> .*"

// TestSection7Pipeline reproduces the Section 7 worked example end to end
// (experiment E2): Expression (10) is unambiguous but not maximal; pivot
// maximization with FORM and INPUT as pivots yields the maximal Expression
// (11) — (Tags−FORM)*·FORM·(Tags−INPUT)*·INPUT·(Tags−INPUT)*⟨INPUT⟩Tags* —
// which still extracts the right element from both documents.
func TestSection7Pipeline(t *testing.T) {
	h := newHTMLEnv()
	expr10, err := Parse(section7Expr10, h.tab, h.sigma, machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	unamb, err := expr10.Unambiguous()
	if err != nil || !unamb {
		t.Fatalf("Expression (10) should be unambiguous (%v, %v)", unamb, err)
	}
	m, err := expr10.Maximal()
	if err != nil {
		t.Fatal(err)
	}
	if m {
		t.Fatal("Expression (10) should NOT be maximal yet")
	}
	// It parses both documents and finds the right INPUT.
	doc1, doc2 := h.doc(t, fig1Doc1), h.doc(t, fig1Doc2)
	if pos, ok := expr10.Extract(doc1); !ok || pos != 6 {
		t.Fatalf("expr10 on doc1 = (%d, %v)", pos, ok)
	}
	if pos, ok := expr10.Extract(doc2); !ok || pos != 22 {
		t.Fatalf("expr10 on doc2 = (%d, %v)", pos, ok)
	}

	// Pivot maximization discovers FORM and INPUT as pivots.
	dec, err := PivotDecomposition(expr10)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Pivots) != 2 ||
		h.tab.Name(dec.Pivots[0]) != "FORM" || h.tab.Name(dec.Pivots[1]) != "INPUT" {
		names := make([]string, len(dec.Pivots))
		for i, p := range dec.Pivots {
			names[i] = h.tab.Name(p)
		}
		t.Fatalf("pivots = %v, want [FORM INPUT]", names)
	}
	expr11, err := Pivot(expr10)
	if err != nil {
		t.Fatal(err)
	}
	requireMaximizedProperly(t, expr10, expr11, "Expression (11)")

	// Expression (11) equals the Section 3 closed form.
	closed, err := Parse("[^ FORM]* FORM [^ INPUT]* INPUT [^ INPUT]* <INPUT> .*",
		h.tab, h.sigma, machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !expr11.Equal(closed) {
		t.Errorf("Expression (11) = %s,\nwant the Section 3 closed form", expr11.String(h.tab))
	}

	// It still extracts correctly from both documents…
	if pos, ok := expr11.Extract(doc1); !ok || pos != 6 {
		t.Errorf("expr11 on doc1 = (%d, %v)", pos, ok)
	}
	if pos, ok := expr11.Extract(doc2); !ok || pos != 22 {
		t.Errorf("expr11 on doc2 = (%d, %v)", pos, ok)
	}
	// …and survives further perturbations: extra rows before/after the form
	// and an extra leading table — the resilience requirement of Section 3.
	perturbed := h.doc(t, "TABLE TR TD A /A /TD /TR TR TD /TD /TR TR TD /TD /TR TR TD "+
		"FORM INPUT INPUT INPUT INPUT /FORM /TD /TR TR TD A /A /TD /TR /TABLE")
	pos, ok := expr11.Extract(perturbed)
	if !ok || h.tab.Name(perturbed[pos]) != "INPUT" || pos != 19 {
		t.Errorf("perturbed extraction = (%d, %v), want the second INPUT at 19", pos, ok)
	}

	// Section 7's closing remark: a direct application of Algorithm 6.2 to
	// Expression (10) also maximizes it, but to a different (larger)
	// expression with different extraction semantics.
	direct, err := LeftFilter(expr10)
	if err != nil {
		t.Fatal(err)
	}
	requireMaximizedProperly(t, expr10, direct, "direct Algorithm 6.2")
	if direct.Equal(expr11) {
		t.Error("direct Algorithm 6.2 output should differ from the pivot output")
	}
	if direct.Left().States() <= expr11.Left().States() {
		t.Errorf("direct output (%d states) should be larger than pivot output (%d states)",
			direct.Left().States(), expr11.Left().States())
	}
}

// TestSection8Limitation demonstrates the closing limitation: the middle-row
// pattern TRⁿ⟨TR⟩TRⁿ is not regular, so any fixed extraction expression
// trained on bounded examples extracts the wrong row for larger tables.
// (Experiment E11.)
func TestSection8Limitation(t *testing.T) {
	h := newHTMLEnv()
	tr := h.tab.Lookup("TR")
	// An expression handling the middle row for n ≤ 2 exactly:
	x, err := Parse("(TR | TR TR) <TR> (TR | TR TR)", h.tab, h.sigma, machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// It is ambiguous — TR TR ⟨TR⟩ TR TR vs TR ⟨TR⟩ TR on the 5-row table
	// coincide, but the 4-row table TRTR⟨TR⟩TR vs TR⟨TR⟩TRTR collides.
	unamb, err := x.Unambiguous()
	if err != nil {
		t.Fatal(err)
	}
	if unamb {
		t.Fatal("the naive middle-row expression should be ambiguous")
	}
	// Semantic check: a single unambiguous expression correct for tables of
	// 3 and 5 rows cannot also be correct for 7 rows. Exhaustive search over
	// expressions is infeasible; we verify the canonical candidate family
	// TRᵏ⟨TR⟩TR* mis-extracts the middle for large tables.
	for _, rows := range []int{3, 5, 7, 9} {
		table := make([]symtab.Symbol, rows)
		for i := range table {
			table[i] = tr
		}
		fixed, err := Parse("TR <TR> TR*", h.tab, h.sigma, machine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		pos, ok := fixed.Extract(table)
		if !ok {
			t.Fatalf("fixed expression failed to parse %d-row table", rows)
		}
		if rows > 3 && pos == rows/2 {
			t.Errorf("fixed expression accidentally found the middle of %d rows", rows)
		}
	}
}

// Maximality testing on the PSPACE witness family must respect budgets
// rather than hang (Theorem 5.12 made operational).
func TestMaximalityBudget(t *testing.T) {
	e := newTenv()
	src := "(p | q)* p"
	for i := 0; i < 14; i++ {
		src += " (p | q)"
	}
	x, err := Parse(src+" <p> .*", e.tab, e.sigma2, machine.Options{MaxStates: 2000})
	if err != nil {
		if errors.Is(err, machine.ErrBudget) {
			return // surfaced at construction; acceptable
		}
		t.Fatal(err)
	}
	if _, err := x.Maximal(); err != nil && !errors.Is(err, machine.ErrBudget) && !errors.Is(err, ErrAmbiguous) {
		t.Errorf("unexpected error: %v", err)
	}
}
