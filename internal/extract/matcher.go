package extract

import (
	"fmt"

	"resilex/internal/machine"
	"resilex/internal/obs"
	"resilex/internal/symtab"
)

// Matcher is a compiled extractor for one expression. Extraction over a
// document of n tokens costs O(n·|Σ|) after an O(n·states) backward
// precomputation — no determinization happens at match time, so a Matcher
// never fails, regardless of the expression.
//
// The strategy is the standard two-scan split search: a forward run of the
// minimal DFA of E1 marks every prefix in L(E1); a backward predecessor
// sweep of the minimal DFA of E2 marks every suffix in L(E2); valid
// extraction positions are the p-positions where both marks meet. For
// unambiguous expressions (Definition 4.2) at most one position survives.
type Matcher struct {
	p     symtab.Symbol
	fwd   *machine.DFA
	bwd   *machine.DFA
	binv  [][][]int32 // binv[symIndex][state] = predecessor states in bwd
	sigma symtab.Alphabet
}

// Compile builds the matcher. Both component DFAs already exist, so the only
// failure mode is an expired deadline carried by the expression's options.
func (e Expr) Compile() (*Matcher, error) {
	if err := e.opt.Err(); err != nil {
		return nil, fmt.Errorf("%w: matcher compilation", err)
	}
	_, ph := obs.StartPhase(e.opt.Ctx, "extract.matcher_compile")
	m := e.compileMatcher()
	ph.Attr("fwd_states", int64(m.fwd.NumStates()))
	ph.Attr("bwd_states", int64(m.bwd.NumStates()))
	ph.Count("extract_matcher_compiles_total", 1)
	ph.End()
	return m, nil
}

// compileMatcher is the infallible core of Compile: the predecessor-table
// build is linear in the (budget-bounded) suffix DFA.
func (e Expr) compileMatcher() *Matcher {
	fwd := e.left.DFA()
	bwd := e.right.DFA()
	binv := make([][][]int32, len(bwd.Symbols()))
	for k := range bwd.Symbols() {
		binv[k] = make([][]int32, bwd.NumStates())
	}
	for s := 0; s < bwd.NumStates(); s++ {
		for k := range bwd.Symbols() {
			t := bwd.Trans[s][k]
			binv[k][t] = append(binv[k][t], int32(s))
		}
	}
	return &Matcher{p: e.p, fwd: fwd, bwd: bwd, binv: binv, sigma: e.sigma}
}

// P returns the marked symbol the matcher extracts.
func (m *Matcher) P() symtab.Symbol { return m.p }

// All returns every valid extraction position in the word, ascending.
func (m *Matcher) All(word []symtab.Symbol) []int {
	n := len(word)
	// suffixOK[i]: word[i:] ∈ L(E2). Backward predecessor sweep over two
	// reused state buffers.
	suffixOK := make([]bool, n+1)
	states := m.bwd.NumStates()
	cur := make([]bool, states)
	next := make([]bool, states)
	for s := range cur {
		cur[s] = m.bwd.Accept[s]
	}
	suffixOK[n] = cur[m.bwd.Start]
	for i := n - 1; i >= 0; i-- {
		k := symIndexOf(m.bwd, word[i])
		for s := range next {
			next[s] = false
		}
		if k >= 0 {
			for t, in := range cur {
				if !in {
					continue
				}
				for _, s := range m.binv[k][t] {
					next[s] = true
				}
			}
		}
		cur, next = next, cur
		suffixOK[i] = cur[m.bwd.Start]
	}
	// Forward scan of E1's DFA, collecting positions.
	var out []int
	state := m.fwd.Start
	for i := 0; i < n; i++ {
		if state >= 0 && word[i] == m.p && m.fwd.Accept[state] && suffixOK[i+1] {
			out = append(out, i)
		}
		if state >= 0 {
			state = m.fwd.Step(state, word[i])
		}
	}
	return out
}

// Find returns the leftmost valid extraction position, or ok=false when the
// expression does not parse the word. For unambiguous expressions the
// leftmost position is the only one.
func (m *Matcher) Find(word []symtab.Symbol) (pos int, ok bool) {
	// Same scans as All but short-circuiting on the first hit.
	all := m.All(word)
	if len(all) == 0 {
		return -1, false
	}
	return all[0], true
}

// Stream returns a constant-memory, single-pass extractor, available
// exactly when the expression's suffix component is Σ* — the form every
// output of the maximization algorithms has. For such expressions a
// position is valid iff the prefix is in L(E1) and the symbol is p, so the
// match can be emitted the moment it is seen, without ever holding the
// document. ok=false when the suffix component is not universal.
func (m *Matcher) Stream() (*Stream, bool) {
	if !m.bwd.IsUniversal() {
		return nil, false
	}
	return &Stream{m: m, state: m.fwd.Start}, true
}

// Stream consumes a document token-by-token; see Matcher.Stream.
type Stream struct {
	m     *Matcher
	state int // current E1-DFA state; -1 after an out-of-Σ token
	pos   int // tokens consumed
	found int // extraction position, -1 until found
	init  bool
}

// Feed consumes one token and reports whether the extraction position has
// just been determined. After the first hit further tokens are ignored
// (unambiguity guarantees there is no second one; defensively, none is
// reported).
func (s *Stream) Feed(sym symtab.Symbol) (pos int, found bool) {
	if !s.init {
		s.found = -1
		s.init = true
	}
	if s.found < 0 && s.state >= 0 && sym == s.m.p && s.m.fwd.Accept[s.state] {
		s.found = s.pos
		s.pos++
		return s.found, true
	}
	if s.state >= 0 {
		s.state = s.m.fwd.Step(s.state, sym)
	}
	s.pos++
	return -1, false
}

// Result returns the extraction position found so far, or ok=false.
func (s *Stream) Result() (pos int, ok bool) {
	if !s.init || s.found < 0 {
		return -1, false
	}
	return s.found, true
}

// allNaive is the obvious O(n²) matcher — rerun the suffix DFA from scratch
// at every candidate position. It exists as the ablation baseline for the
// two-scan design (BenchmarkMatcherAblation) and as an independent oracle in
// tests; All must agree with it everywhere.
func (m *Matcher) allNaive(word []symtab.Symbol) []int {
	var out []int
	state := m.fwd.Start
	for i := 0; i < len(word); i++ {
		if state >= 0 && word[i] == m.p && m.fwd.Accept[state] {
			// Run the suffix DFA over word[i+1:].
			s := m.bwd.Start
			for j := i + 1; j < len(word) && s >= 0; j++ {
				s = m.bwd.Step(s, word[j])
			}
			if s >= 0 && m.bwd.Accept[s] {
				out = append(out, i)
			}
		}
		if state >= 0 {
			state = m.fwd.Step(state, word[i])
		}
	}
	return out
}

func symIndexOf(d *machine.DFA, sym symtab.Symbol) int {
	syms := d.Symbols()
	lo, hi := 0, len(syms)
	for lo < hi {
		mid := (lo + hi) / 2
		if syms[mid] < sym {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(syms) && syms[lo] == sym {
		return lo
	}
	return -1
}
