package extract

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"resilex/internal/machine"
	"resilex/internal/obs"
	"resilex/internal/symtab"
)

// StreamMatcher is the one-pass, constant-memory counterpart of Matcher.
// Where the two-scan matcher needs the whole token slice (a forward run of
// E1's DFA plus a backward predecessor sweep of E2's DFA), the streaming
// matcher resolves split points online in a single forward pass: it runs
// E1's DFA alongside a lazily-determinized simulation of E2 — one suffix
// "thread" per candidate split position, with threads that reach the same
// E2 state merged, so at most |Q₂| threads are ever live. THEORY.md
// ("One-pass streaming extraction") proves the construction equivalent to
// the two-pass scheme; the differential fuzz target FuzzStreamTwoPassEquiv
// enforces it on every build.
//
// Both component automata are flattened to dense []uint16 transition tables
// (machine.Dense), so the per-token work is two table loads and a bounded
// merge sweep — no map walks, no binary symbol search, no allocation. A
// StreamMatcher is immutable and safe for concurrent use; per-extraction
// state lives in pooled StreamRun values.
type StreamMatcher struct {
	p   symtab.Symbol
	fwd *machine.Dense // E1's minimal DFA
	sfx *machine.Dense // E2's minimal DFA, simulated per-candidate
	idx *machine.SymbolIndex

	// doomed marks E2 states from which acceptance is unreachable; threads
	// stepping into them are discarded immediately, which is what keeps the
	// live-candidate set (and the caller's capture buffers) small.
	doomed      []bool
	startDoomed bool // L(E2) = ∅: every candidate is stillborn

	pool       sync.Pool // *StreamRun
	poolHits   atomic.Int64
	poolMisses atomic.Int64
}

// StreamMode selects how much candidate bookkeeping a run keeps.
type StreamMode int

const (
	// FindLeftmost tracks only the leftmost candidate position per live
	// suffix thread — O(|Q₂|) state, no arena, the zero-allocation serving
	// mode. Sufficient for unambiguous expressions, where at most one
	// position survives anyway.
	FindLeftmost StreamMode = iota
	// CollectAll retains every live candidate so End can report the full
	// ascending position list Matcher.All would; the differential tests and
	// the ambiguity-diagnostic paths run in this mode.
	CollectAll
)

// CompileStream builds the streaming matcher. It fails when a component
// automaton exceeds the dense-table state limit (callers fall back to the
// two-pass Matcher, which has no such bound) or when the expression's
// deadline has expired.
func (e Expr) CompileStream() (_ *StreamMatcher, err error) {
	if err := e.opt.Err(); err != nil {
		return nil, fmt.Errorf("%w: stream-matcher compilation", err)
	}
	_, ph := obs.StartPhase(e.opt.Ctx, "extract.stream_compile")
	defer func() {
		ph.Count("extract_stream_compiles_total", 1)
		endPhaseErr(ph, err)
	}()
	fwd, err := e.left.DFA().Compact()
	if err != nil {
		return nil, fmt.Errorf("extract: stream matcher: prefix automaton: %w", err)
	}
	sfx, err := e.right.DFA().Compact()
	if err != nil {
		return nil, fmt.Errorf("extract: stream matcher: suffix automaton: %w", err)
	}
	idx, err := machine.NewSymbolIndex(e.sigma)
	if err != nil {
		return nil, fmt.Errorf("extract: stream matcher: %w", err)
	}
	doomed := sfx.Doomed()
	ph.Attr("fwd_states", int64(fwd.NumStates()))
	ph.Attr("sfx_states", int64(sfx.NumStates()))
	return &StreamMatcher{
		p:           e.p,
		fwd:         fwd,
		sfx:         sfx,
		idx:         idx,
		doomed:      doomed,
		startDoomed: doomed[sfx.Start],
	}, nil
}

// endPhaseErr closes a phase, recording the error on its span if any.
func endPhaseErr(ph *obs.Phase, err error) {
	if err != nil {
		ph.Fail(err)
	}
	ph.End()
}

// P returns the marked symbol the matcher extracts.
func (m *StreamMatcher) P() symtab.Symbol { return m.p }

// Get borrows a run from the matcher's pool (or creates one) and resets it
// for a new document in the given mode. Return it with Put when done; a run
// holds reusable buffers, so the warm Get→Feed…→Put cycle is allocation-free.
func (m *StreamMatcher) Get(mode StreamMode) *StreamRun {
	var r *StreamRun
	if v := m.pool.Get(); v != nil {
		r = v.(*StreamRun)
		m.poolHits.Add(1)
	} else {
		r = &StreamRun{sm: m}
		m.poolMisses.Add(1)
	}
	r.reset(mode)
	return r
}

// Put returns a run to the pool. The run (and any positions or borrowed
// buffers derived from it) must not be used afterwards.
func (m *StreamMatcher) Put(r *StreamRun) {
	if r == nil || r.sm != m {
		return
	}
	m.pool.Put(r)
}

// PoolStats reports cumulative run-pool hits and misses, for the
// extract_stream_pool_* serving metrics.
func (m *StreamMatcher) PoolStats() (hits, misses int64) {
	return m.poolHits.Load(), m.poolMisses.Load()
}

// All runs the matcher over a fully materialized word — the convenience
// surface the equivalence tests compare against Matcher.All.
func (m *StreamMatcher) All(word []symtab.Symbol) []int {
	r := m.Get(CollectAll)
	defer m.Put(r)
	for _, sym := range word {
		r.Feed(sym)
	}
	return r.All(nil)
}

// Find returns the leftmost valid extraction position in a materialized
// word, or ok=false.
func (m *StreamMatcher) Find(word []symtab.Symbol) (pos int, ok bool) {
	r := m.Get(FindLeftmost)
	defer m.Put(r)
	for _, sym := range word {
		r.Feed(sym)
	}
	return r.Find()
}

// threadSet is one generation of live suffix threads: the states that carry
// at least one candidate, and per state either the minimum candidate
// position (FindLeftmost) or the head/tail of an arena-linked candidate
// list (CollectAll). head[q] < 0 means no thread in q.
type threadSet struct {
	live []uint16
	head []int32
	tail []int32
}

func (s *threadSet) size(states int) {
	if cap(s.head) < states {
		s.head = make([]int32, states)
		s.tail = make([]int32, states)
		for i := range s.head {
			s.head[i] = -1
		}
	}
	s.head = s.head[:states]
	s.tail = s.tail[:states]
	s.live = s.live[:0]
}

// clear empties the set via its live list (touched entries only).
func (s *threadSet) clear() {
	for _, q := range s.live {
		s.head[q] = -1
	}
	s.live = s.live[:0]
}

// node is one retained candidate in CollectAll mode: its position and the
// arena index of the next candidate sharing the same automaton state.
type node struct{ pos, next int32 }

// StreamRun is the per-document state of a streaming extraction: the E1
// state, the live suffix-thread set (double-buffered), and — in CollectAll
// mode — the candidate arena. Runs are pooled by their StreamMatcher; all
// buffers are reused across documents, so a warm run never allocates.
// A StreamRun is single-goroutine state.
type StreamRun struct {
	sm   *StreamMatcher
	mode StreamMode
	f    int32 // E1 state; -1 once an out-of-Σ token is seen
	pos  int32 // tokens consumed

	cur, nxt threadSet

	// CollectAll candidate storage: an arena of linked nodes plus a
	// compaction scratch buffer. liveNodes tracks reachable nodes so
	// compaction triggers when most of the arena is garbage.
	arena     []node
	arenaB    []node
	liveNodes int32
}

func (r *StreamRun) reset(mode StreamMode) {
	r.mode = mode
	r.f = int32(r.sm.fwd.Start)
	r.pos = 0
	states := r.sm.sfx.NumStates()
	// Clear before sizing: a pooled run still carries the previous
	// document's thread set, and clear needs its live list to reset the
	// touched head entries.
	r.cur.clear()
	r.nxt.clear()
	r.cur.size(states)
	r.nxt.size(states)
	r.arena = r.arena[:0]
	r.liveNodes = 0
}

// Pos reports the number of tokens consumed so far.
func (r *StreamRun) Pos() int { return int(r.pos) }

// Feed consumes one token. It reports whether this token was born as a
// candidate split position that is still worth capturing: the E1 prefix
// accepted, the token is the marked symbol, and the candidate entered the
// live thread set (in FindLeftmost mode a newborn shadowed by an older
// candidate in the same suffix state is discarded immediately — it can
// never beat the older one, and their fates coincide thereafter).
func (r *StreamRun) Feed(sym symtab.Symbol) bool {
	sm := r.sm
	j := r.pos
	r.pos = j + 1
	born := r.f >= 0 && sym == sm.p && sm.fwd.Accept[r.f]
	k := sm.idx.Index(sym)
	if k < 0 {
		// Out-of-Σ token: no suffix containing it is in L(E2) ⊆ Σ*, so every
		// live candidate dies, and the prefix automaton is dead for good —
		// exactly the two-pass matcher's treatment. (born is necessarily
		// false here: the marked symbol is always in Σ.)
		r.cur.clear()
		r.arena = r.arena[:0]
		r.liveNodes = 0
		r.f = -1
		return false
	}
	if r.f >= 0 {
		r.f = int32(sm.fwd.Step(uint16(r.f), k))
	}
	// Advance every live thread, merging threads that land on the same
	// state and discarding threads that enter the doomed region.
	stride := sm.sfx.Stride
	table := sm.sfx.Table
	for _, q := range r.cur.live {
		t := table[int(q)*stride+k]
		if sm.doomed[t] {
			if r.mode == CollectAll {
				for i := r.cur.head[q]; i >= 0; i = r.arena[i].next {
					r.liveNodes--
				}
			}
			continue
		}
		if r.mode == FindLeftmost {
			v := r.cur.head[q]
			if h := r.nxt.head[t]; h < 0 {
				r.nxt.head[t] = v
				r.nxt.live = append(r.nxt.live, t)
			} else if v < h {
				r.nxt.head[t] = v
			}
		} else {
			if r.nxt.head[t] < 0 {
				r.nxt.head[t] = r.cur.head[q]
				r.nxt.tail[t] = r.cur.tail[q]
				r.nxt.live = append(r.nxt.live, t)
			} else {
				r.arena[r.nxt.tail[t]].next = r.cur.head[q]
				r.nxt.tail[t] = r.cur.tail[q]
			}
		}
	}
	if born && !sm.startDoomed {
		born = r.inject(j)
	} else {
		born = false
	}
	r.cur.clear()
	r.cur, r.nxt = r.nxt, r.cur
	if r.mode == CollectAll && len(r.arena) > 64 && r.liveNodes*4 < int32(len(r.arena)) {
		r.compact()
	}
	return born
}

// inject adds the candidate born at position j: a fresh suffix thread in
// E2's start state (it has consumed nothing of its suffix yet). Positions
// are strictly increasing, so in FindLeftmost mode an occupied start state
// always already holds a smaller (better) candidate.
func (r *StreamRun) inject(j int32) bool {
	start := uint16(r.sm.sfx.Start)
	if r.mode == FindLeftmost {
		if r.nxt.head[start] >= 0 {
			return false
		}
		r.nxt.head[start] = j
		r.nxt.live = append(r.nxt.live, start)
		return true
	}
	r.arena = append(r.arena, node{pos: j, next: -1})
	id := int32(len(r.arena) - 1)
	r.liveNodes++
	if r.nxt.head[start] < 0 {
		r.nxt.head[start] = id
		r.nxt.tail[start] = id
		r.nxt.live = append(r.nxt.live, start)
	} else {
		r.arena[r.nxt.tail[start]].next = id
		r.nxt.tail[start] = id
	}
	return true
}

// compact rewrites the arena keeping only nodes reachable from live
// threads, bounding memory by the live-candidate count rather than by the
// number of candidates ever born.
func (r *StreamRun) compact() {
	dst := r.arenaB[:0]
	for _, q := range r.cur.live {
		h := r.cur.head[q]
		if h < 0 {
			continue
		}
		newHead := int32(len(dst))
		for i := h; i >= 0; i = r.arena[i].next {
			dst = append(dst, node{pos: r.arena[i].pos, next: int32(len(dst)) + 1})
		}
		dst[len(dst)-1].next = -1
		r.cur.head[q] = newHead
		r.cur.tail[q] = int32(len(dst) - 1)
	}
	r.arenaB = r.arena
	r.arena = dst
	r.liveNodes = int32(len(dst))
}

// Live appends the candidate positions that are still in play — one per
// live suffix thread in FindLeftmost mode — to dst. Callers capturing match
// regions use it to prune their capture buffers: any captured position not
// in this set can no longer win.
func (r *StreamRun) Live(dst []int32) []int32 {
	for _, q := range r.cur.live {
		if r.mode == FindLeftmost {
			dst = append(dst, r.cur.head[q])
			continue
		}
		for i := r.cur.head[q]; i >= 0; i = r.arena[i].next {
			dst = append(dst, r.arena[i].pos)
		}
	}
	return dst
}

// Find returns the leftmost valid extraction position given the tokens fed
// so far form the complete document, or ok=false when the expression does
// not parse it. Valid in both modes.
func (r *StreamRun) Find() (pos int, ok bool) {
	best := int32(-1)
	for _, q := range r.cur.live {
		if !r.sm.sfx.Accept[q] {
			continue
		}
		if r.mode == FindLeftmost {
			if v := r.cur.head[q]; best < 0 || v < best {
				best = v
			}
			continue
		}
		for i := r.cur.head[q]; i >= 0; i = r.arena[i].next {
			if v := r.arena[i].pos; best < 0 || v < best {
				best = v
			}
		}
	}
	if best < 0 {
		return -1, false
	}
	return int(best), true
}

// All appends every valid extraction position, ascending, to dst —
// CollectAll mode's answer to Matcher.All. In FindLeftmost mode it reports
// at most the per-thread minima that survived (use CollectAll for the full
// set).
func (r *StreamRun) All(dst []int) []int {
	n0 := len(dst)
	for _, q := range r.cur.live {
		if !r.sm.sfx.Accept[q] {
			continue
		}
		if r.mode == FindLeftmost {
			dst = append(dst, int(r.cur.head[q]))
			continue
		}
		for i := r.cur.head[q]; i >= 0; i = r.arena[i].next {
			dst = append(dst, int(r.arena[i].pos))
		}
	}
	slices.Sort(dst[n0:])
	return dst
}
