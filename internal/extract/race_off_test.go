//go:build !race

package extract

const raceEnabled = false
