package extract

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"resilex/internal/codec"
	"resilex/internal/lang"
	"resilex/internal/machine"
	"resilex/internal/rx"
	"resilex/internal/symtab"
)

// CompiledTuple is the k-ary analogue of Compiled: the symbol table a
// persisted tuple expression was compiled against, the compiled tuple (k+1
// minimal segment DFAs), and the persisted form it came from. Immutable
// after construction and safe for concurrent use; internal/spanner compiles
// its multi-split program straight from the Tuple.
type CompiledTuple struct {
	Tab        *symtab.Table
	Tuple      *Tuple
	Src        string
	SigmaNames []string
}

// KeyTuple returns the content address of a persisted tuple expression —
// the k-ary counterpart of Key, domain-separated from it so a tuple and a
// single-pivot expression can never collide. Like Key it is a pure function
// of the sorted alphabet name set and the canonical segment fingerprints.
func KeyTuple(src string, sigmaNames []string) (string, error) {
	names := append([]string(nil), sigmaNames...)
	sort.Strings(names)
	names = dedupSorted(names)
	tab := symtab.NewTable()
	sigma := symtab.NewAlphabet(tab.InternAll(names...)...)
	m, err := rx.ParseMultiMarked(src, tab, sigma)
	if err != nil {
		return "", fmt.Errorf("extract: tuple cache key: %w", err)
	}
	h := sha256.New()
	markNames := make([]string, len(m.Marks))
	for i, p := range m.Marks {
		markNames[i] = tab.Name(p)
	}
	fmt.Fprintf(h, "v1|tuple|sigma=%s|marks=%s", strings.Join(names, ","), strings.Join(markNames, ","))
	for i, seg := range m.Segments {
		fmt.Fprintf(h, "|seg%d=%s", i, rx.Fingerprint(seg))
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// CompileTupleArtifact compiles a persisted tuple expression into a
// shareable artifact: a fresh symbol table and the parsed tuple, with the
// deadline stripped from the stored value exactly like CompileArtifact.
func CompileTupleArtifact(src string, sigmaNames []string, opt machine.Options) (*CompiledTuple, error) {
	tab := symtab.NewTable()
	sigma := symtab.NewAlphabet(tab.InternAll(sigmaNames...)...)
	t, err := ParseTuple(src, tab, sigma, opt)
	if err != nil {
		return nil, err
	}
	t.opt = opt.WithoutContext()
	return &CompiledTuple{
		Tab: tab, Tuple: t,
		Src: src, SigmaNames: append([]string(nil), sigmaNames...),
	}, nil
}

// EncodeTupleArtifact serializes a compiled tuple artifact into a version-2
// RXAR frame carrying the tuple kind: the source, the alphabet names, the
// symbol table, the k pivot ids, the full alphabet ids, and the k+1 minimal
// segment DFAs — so DecodeTupleArtifact skips every determinization.
func EncodeTupleArtifact(c *CompiledTuple) ([]byte, error) {
	if c == nil || c.Src == "" || c.Tab == nil || c.Tuple == nil {
		return nil, fmt.Errorf("extract: encoding tuple artifact: no persisted source (artifact not built by CompileTupleArtifact)")
	}
	var w codec.Writer
	w.Uint(artifactKindTuple)
	w.String(c.Src)
	w.Uint(uint64(len(c.SigmaNames)))
	for _, n := range c.SigmaNames {
		w.String(n)
	}
	w.Bytes2(c.Tab.Encode())
	marks := c.Tuple.Marks()
	markIDs := make([]int, len(marks))
	for i, p := range marks {
		markIDs[i] = int(p)
	}
	w.Ints(markIDs)
	sigma := c.Tuple.Sigma().Symbols()
	ids := make([]int, len(sigma))
	for i, s := range sigma {
		ids[i] = int(s)
	}
	w.Ints(ids)
	for j := 0; j <= c.Tuple.Arity(); j++ {
		d := c.Tuple.Segment(j).DFA()
		if d == nil {
			return nil, fmt.Errorf("extract: encoding tuple artifact: segment %d has no compiled DFA", j)
		}
		w.Bytes2(d.Encode())
	}
	return codec.Seal(artifactMagic, artifactVersion, w.Bytes()), nil
}

// DecodeTupleArtifact restores a k-ary tuple artifact under opt's budget
// and deadline, with the same integrity posture as DecodeArtifact: the
// embedded source is re-parsed, the persisted table must match the
// re-derived interning, pivot and alphabet ids must agree with the source,
// and every segment DFA must be over the full Σ. Structural damage returns
// an error wrapping codec.ErrMalformedInput; only version-2 frames carry
// tuples, so there is no legacy fallback.
func DecodeTupleArtifact(blob []byte, opt machine.Options) (*CompiledTuple, error) {
	payload, err := codec.Open(artifactMagic, artifactVersion, blob)
	if err != nil {
		return nil, fmt.Errorf("extract: decoding tuple artifact: %w", err)
	}
	r := codec.NewReader(payload)
	switch kind := r.Uint(); {
	case r.Err() != nil:
		return nil, fmt.Errorf("extract: decoding tuple artifact: %w", r.Err())
	case kind == artifactKindSingle:
		return nil, fmt.Errorf("extract: decoding tuple artifact: %w: frame holds a single-pivot artifact; use DecodeArtifact", codec.ErrMalformedInput)
	case kind != artifactKindTuple:
		return nil, fmt.Errorf("extract: decoding tuple artifact: %w: unknown artifact kind %d", codec.ErrMalformedInput, kind)
	}
	src := r.String()
	nNames := r.Len()
	if r.Err() != nil {
		return nil, fmt.Errorf("extract: decoding tuple artifact: %w", r.Err())
	}
	sigmaNames := make([]string, 0, min(nNames, 1024))
	for i := 0; i < nNames && r.Err() == nil; i++ {
		sigmaNames = append(sigmaNames, r.String())
	}
	tabBlob := r.Bytes2()
	markIDs := r.Ints()
	sigmaIDs := r.Ints()
	if r.Err() != nil {
		return nil, fmt.Errorf("extract: decoding tuple artifact: %w", r.Err())
	}
	dfaBlobs := make([][]byte, 0, len(markIDs)+1)
	for j := 0; j <= len(markIDs) && r.Err() == nil; j++ {
		dfaBlobs = append(dfaBlobs, r.Bytes2())
	}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("extract: decoding tuple artifact: %w", err)
	}

	tab, err := symtab.DecodeTable(tabBlob)
	if err != nil {
		return nil, fmt.Errorf("extract: decoding tuple artifact: %w", err)
	}
	rederived := symtab.NewTable()
	sigma := symtab.NewAlphabet(rederived.InternAll(sigmaNames...)...)
	m, err := rx.ParseMultiMarked(src, rederived, sigma)
	if err != nil {
		return nil, fmt.Errorf("extract: decoding tuple artifact: %w: embedded source does not parse: %v", codec.ErrMalformedInput, err)
	}
	if !tab.EqualNames(rederived) {
		return nil, fmt.Errorf("extract: decoding tuple artifact: %w: persisted table disagrees with re-derived interning", codec.ErrMalformedInput)
	}
	if len(m.Marks) != len(markIDs) {
		return nil, fmt.Errorf("extract: decoding tuple artifact: %w: arity %d disagrees with source (%d)", codec.ErrMalformedInput, len(markIDs), len(m.Marks))
	}
	for i, p := range m.Marks {
		if int(p) != markIDs[i] {
			return nil, fmt.Errorf("extract: decoding tuple artifact: %w: pivot %d disagrees with source", codec.ErrMalformedInput, i+1)
		}
	}
	full := m.Sigma
	for _, seg := range m.Segments {
		full = full.Union(seg.Symbols())
	}
	for _, p := range m.Marks {
		full = full.With(p)
	}
	want := full.Symbols()
	if len(want) != len(sigmaIDs) {
		return nil, fmt.Errorf("extract: decoding tuple artifact: %w: alphabet disagrees with source", codec.ErrMalformedInput)
	}
	for i, s := range want {
		if int(s) != sigmaIDs[i] {
			return nil, fmt.Errorf("extract: decoding tuple artifact: %w: alphabet disagrees with source", codec.ErrMalformedInput)
		}
	}

	stored := opt.WithoutContext()
	segs := make([]lang.Language, len(dfaBlobs))
	for j, blob := range dfaBlobs {
		d, err := machine.DecodeDFA(blob)
		if err != nil {
			return nil, fmt.Errorf("extract: decoding tuple artifact: segment %d: %w", j, err)
		}
		if !d.Sigma.Equal(full) {
			return nil, fmt.Errorf("extract: decoding tuple artifact: %w: segment %d DFA over wrong Σ", codec.ErrMalformedInput, j)
		}
		// The checksum ties the DFAs to the canonical minimal machines the
		// encoder read out of the tuple — same no-re-minimization contract as
		// the single-pivot decode.
		segs[j] = lang.FromMinimalDFA(d, stored)
	}
	marks := make([]symtab.Symbol, len(markIDs))
	for i, id := range markIDs {
		marks[i] = symtab.Symbol(id)
	}
	t, err := NewTuple(segs, marks)
	if err != nil {
		return nil, fmt.Errorf("extract: decoding tuple artifact: %w: %v", codec.ErrMalformedInput, err)
	}
	t.opt = stored
	t.segASTs = m.Segments
	return &CompiledTuple{
		Tab: tab, Tuple: t,
		Src: src, SigmaNames: sigmaNames,
	}, nil
}
