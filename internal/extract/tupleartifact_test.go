package extract

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"resilex/internal/codec"
	"resilex/internal/machine"
	"resilex/internal/rx"
)

func compileTupleFixture(t *testing.T) *CompiledTuple {
	t.Helper()
	c, err := CompileTupleArtifact("q* <p> q* <r> .*", []string{"p", "q", "r"}, machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestTupleArtifactRoundTrip(t *testing.T) {
	c := compileTupleFixture(t)
	blob, err := EncodeTupleArtifact(c)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTupleArtifact(blob, machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != c.Src || !reflect.DeepEqual(got.SigmaNames, c.SigmaNames) {
		t.Fatalf("persisted form: got (%q, %v), want (%q, %v)", got.Src, got.SigmaNames, c.Src, c.SigmaNames)
	}
	if got.Tuple.Arity() != c.Tuple.Arity() || !reflect.DeepEqual(got.Tuple.Marks(), c.Tuple.Marks()) {
		t.Fatal("decoded tuple pivots disagree")
	}
	for j := 0; j <= c.Tuple.Arity(); j++ {
		if !machine.StructurallyEqual(got.Tuple.Segment(j).DFA(), c.Tuple.Segment(j).DFA()) {
			t.Fatalf("segment %d DFA not preserved", j)
		}
	}
	// The decoded tuple extracts identically.
	w, err := rx.ParseWord("q p q q r q", got.Tab)
	if err != nil {
		t.Fatal(err)
	}
	gv, gok, gerr := got.Tuple.Extract(w)
	cv, cok, cerr := c.Tuple.Extract(w)
	if gok != cok || (gerr == nil) != (cerr == nil) || !reflect.DeepEqual(gv, cv) {
		t.Fatalf("decoded Extract = (%v, %v, %v), fresh = (%v, %v, %v)", gv, gok, gerr, cv, cok, cerr)
	}
	// Same content address both sides.
	k1, err := KeyTuple(c.Src, c.SigmaNames)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := KeyTuple(got.Src, got.SigmaNames)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("decoded artifact re-keys to a different content address")
	}
}

// TestKeyTupleDomainSeparation: an expression valid under both the single-
// pivot and the tuple parser must get different content addresses — the
// caches never alias a Compiled and a CompiledTuple.
func TestKeyTupleDomainSeparation(t *testing.T) {
	src, names := "q* <p> q*", []string{"p", "q"}
	k1, err := Key(src, names)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := KeyTuple(src, names)
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 {
		t.Fatal("single-pivot and tuple keys collide")
	}
	// Key order-independence carries over.
	k3, err := KeyTuple(src, []string{"q", "p", "q"})
	if err != nil {
		t.Fatal(err)
	}
	if k2 != k3 {
		t.Fatal("KeyTuple depends on alphabet listing order")
	}
}

// TestArtifactKindMismatch: each decoder refuses the other kind's frame
// with a malformed-input error that names the right entry point.
func TestArtifactKindMismatch(t *testing.T) {
	single, err := CompileArtifact("q* <p> .*", []string{"p", "q"}, machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sblob, err := EncodeArtifact(single)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeTupleArtifact(sblob, machine.Options{}); !errors.Is(err, codec.ErrMalformedInput) {
		t.Fatalf("tuple-decoding a single-pivot frame: err = %v, want ErrMalformedInput", err)
	}

	tblob, err := EncodeTupleArtifact(compileTupleFixture(t))
	if err != nil {
		t.Fatal(err)
	}
	_, err = DecodeArtifact(tblob, machine.Options{})
	if !errors.Is(err, codec.ErrMalformedInput) {
		t.Fatalf("single-decoding a tuple frame: err = %v, want ErrMalformedInput", err)
	}
	if !strings.Contains(err.Error(), "DecodeTupleArtifact") {
		t.Fatalf("kind-mismatch error should direct to DecodeTupleArtifact, got: %v", err)
	}
}

// TestDecodeArtifactLegacyV1 is the mixed-version round trip: a version-1
// frame (kindless payload, as older binaries wrote) must still decode to
// the same machine the current encoder round-trips.
func TestDecodeArtifactLegacyV1(t *testing.T) {
	c, err := CompileArtifact("q* <p> .*", []string{"p", "q"}, machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Replicate the v1 payload layout byte for byte: no kind discriminator.
	var w codec.Writer
	w.String(c.Src)
	w.Uint(uint64(len(c.SigmaNames)))
	for _, n := range c.SigmaNames {
		w.String(n)
	}
	w.Bytes2(c.Tab.Encode())
	w.Int(int64(c.Expr.P()))
	sigma := c.Expr.Sigma().Symbols()
	ids := make([]int, len(sigma))
	for i, s := range sigma {
		ids[i] = int(s)
	}
	w.Ints(ids)
	w.Bytes2(c.Expr.Left().DFA().Encode())
	w.Bytes2(c.Expr.Right().DFA().Encode())
	legacy := codec.Seal("RXAR", 1, w.Bytes())

	got, err := DecodeArtifact(legacy, machine.Options{})
	if err != nil {
		t.Fatalf("decoding a v1 frame: %v", err)
	}
	if got.Src != c.Src || got.Expr.P() != c.Expr.P() ||
		!machine.StructurallyEqual(got.Expr.Left().DFA(), c.Expr.Left().DFA()) ||
		!machine.StructurallyEqual(got.Expr.Right().DFA(), c.Expr.Right().DFA()) {
		t.Fatal("v1 decode disagrees with the artifact it was written from")
	}

	// The current encoder writes v2; both versions of the same artifact
	// decode to equivalent machines.
	v2blob, err := EncodeArtifact(c)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := DecodeArtifact(v2blob, machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !machine.StructurallyEqual(got.Expr.Left().DFA(), got2.Expr.Left().DFA()) {
		t.Fatal("v1 and v2 decodes disagree")
	}

	// A v1-style *tuple* frame never existed; sealing tuple bytes as v1
	// must not decode.
	tblob, err := EncodeTupleArtifact(compileTupleFixture(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeTupleArtifact(append([]byte(nil), tblob[:4]...), machine.Options{}); err == nil {
		t.Fatal("truncated tuple frame decoded")
	}
}

func TestDecodeTupleArtifactRejectsCorruption(t *testing.T) {
	blob, err := EncodeTupleArtifact(compileTupleFixture(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := range blob {
		mut := append([]byte(nil), blob...)
		mut[i] ^= 0x20
		if _, err := DecodeTupleArtifact(mut, machine.Options{}); !errors.Is(err, codec.ErrMalformedInput) {
			t.Fatalf("bit flip at %d: err = %v, want ErrMalformedInput", i, err)
		}
	}
	for cut := 0; cut < len(blob); cut += 7 {
		if _, err := DecodeTupleArtifact(blob[:cut], machine.Options{}); err == nil {
			t.Fatalf("truncation to %d decoded", cut)
		}
	}
}

func TestEncodeTupleArtifactRequiresSource(t *testing.T) {
	if _, err := EncodeTupleArtifact(nil); err == nil {
		t.Fatal("nil artifact encoded")
	}
	c := compileTupleFixture(t)
	if _, err := EncodeTupleArtifact(&CompiledTuple{Tab: c.Tab, Tuple: c.Tuple}); err == nil {
		t.Fatal("artifact without source encoded")
	}
}
