package extract

import (
	"errors"
	"testing"
	"testing/quick"

	"resilex/internal/symtab"
)

func TestDisambiguateSimple(t *testing.T) {
	e := newTenv()
	// p*⟨p⟩p* is the canonical ambiguous expression; anchoring the
	// extraction of "p p p" at position 0 should force a repair toward
	// "first p" semantics.
	in := e.expr(t, "p* <p> p*", e.sigma2)
	keep := [][]symtab.Symbol{e.word(t, "p p p")}
	// Extract on ambiguous expressions returns the leftmost split (0).
	out, err := Disambiguate(in, keep, 10)
	if err != nil {
		t.Fatal(err)
	}
	unamb, err := out.Unambiguous()
	if err != nil || !unamb {
		t.Fatalf("output not unambiguous: %v %v", unamb, err)
	}
	for _, w := range [][]symtab.Symbol{
		e.word(t, "p"), e.word(t, "p p"), e.word(t, "p p p"),
	} {
		pos, ok := out.Extract(w)
		if !ok || pos != 0 {
			t.Errorf("extraction of %q = (%d, %v), want first p", e.tab.String(w), pos, ok)
		}
	}
}

func TestDisambiguateSection3(t *testing.T) {
	e := newTenv()
	// The over-generalized Section 3 expression Tags*⟨p⟩Tags* confuses the
	// robot; anchored on a sample, disambiguation recovers a usable one.
	in := e.expr(t, ".* <p> .*", e.sigma2)
	keep := [][]symtab.Symbol{e.word(t, "q q p q")}
	out, err := Disambiguate(in, keep, 20)
	if err != nil {
		t.Fatal(err)
	}
	unamb, _ := out.Unambiguous()
	if !unamb {
		t.Fatal("still ambiguous")
	}
	if pos, ok := out.Extract(e.word(t, "q q p q")); !ok || pos != 2 {
		t.Errorf("sample extraction = (%d, %v)", pos, ok)
	}
}

func TestDisambiguateAlreadyUnambiguous(t *testing.T) {
	e := newTenv()
	in := e.expr(t, "q p <p> .*", e.sigma2)
	out, err := Disambiguate(in, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(in) {
		t.Error("unambiguous input should be returned unchanged")
	}
}

func TestDisambiguateConflictingKeep(t *testing.T) {
	e := newTenv()
	in := e.expr(t, "p* <p> p*", e.sigma2)
	// A keep word the input does not parse.
	if _, err := Disambiguate(in, [][]symtab.Symbol{e.word(t, "q")}, 5); err == nil {
		t.Error("unparseable keep word accepted")
	}
}

func TestDisambiguateExhaustion(t *testing.T) {
	e := newTenv()
	in := e.expr(t, "p* <p> p*", e.sigma2)
	// Zero rounds cannot fix an ambiguous expression.
	if _, err := Disambiguate(in, nil, 0); !errors.Is(err, ErrNotApplicable) {
		t.Errorf("err = %v", err)
	}
}

// Disambiguate feeds Maximize: the paper's closing pipeline sketch —
// generate (possibly ambiguous) → disambiguate with counterexamples →
// maximize.
func TestDisambiguateThenMaximize(t *testing.T) {
	e := newTenv()
	in := e.expr(t, "q* <p> .*", e.sigma2) // unambiguous already
	amb := e.expr(t, ".* <p> .*", e.sigma2)
	keep := [][]symtab.Symbol{e.word(t, "q p q"), e.word(t, "q q p")}
	fixed, err := Disambiguate(amb, keep, 20)
	if err != nil {
		t.Fatal(err)
	}
	maxed, err := Maximize(fixed)
	if err != nil {
		t.Skipf("maximization not applicable to the repaired form: %v", err)
	}
	if m, err := maxed.Maximal(); err != nil || !m {
		t.Fatalf("not maximal: %v %v", m, err)
	}
	for _, w := range keep {
		pi, _ := fixed.Extract(w)
		po, ok := maxed.Extract(w)
		if !ok || pi != po {
			t.Errorf("pipeline drifted on %q", e.tab.String(w))
		}
	}
	_ = in
}

// Property: whenever Disambiguate succeeds on a random ambiguous
// expression, the output is unambiguous and every keep word still extracts
// at its original (leftmost) position.
func TestQuickDisambiguate(t *testing.T) {
	e, cfg := quickEnv()
	prop := func(v randomExprValue) bool {
		x, err := FromAST(v.left, e.p, v.right, e.sigma2, machineOpts())
		if err != nil {
			return true
		}
		unamb, err := x.Unambiguous()
		if err != nil || unamb {
			return true
		}
		// Keep: up to two short parsed words.
		var keep [][]symtab.Symbol
		for _, w := range allWords(e.sigma2, 4) {
			if x.Parses(w) {
				keep = append(keep, w)
				if len(keep) == 2 {
					break
				}
			}
		}
		out, err := Disambiguate(x, keep, 8)
		if err != nil {
			return true // not always repairable; fine
		}
		if ok, err := out.Unambiguous(); err != nil || !ok {
			t.Logf("Disambiguate output ambiguous for %s", x.String(e.tab))
			return false
		}
		for _, w := range keep {
			want, _ := x.Extract(w)
			got, ok := out.Extract(w)
			if !ok || got != want {
				t.Logf("keep word %s drifted: %d -> (%d,%v)", e.tab.String(w), want, got, ok)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
