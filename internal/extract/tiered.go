package extract

import (
	"context"

	"resilex/internal/machine"
	"resilex/internal/obs"
)

// ArtifactCache is the serving-path contract the wrapper layer loads
// through: hand back the compiled artifact for a persisted expression,
// however many tiers that takes. *Cache (memory only) and *TieredCache
// (memory over disk) both implement it.
type ArtifactCache interface {
	Load(src string, sigmaNames []string, opt machine.Options) (*Compiled, error)
}

// TieredCache composes the in-memory LRU with the disk tier under one
// content-addressed key space: memory → disk → compile. The memory tier's
// singleflight is preserved — concurrent cold misses on one key collapse to
// a single disk probe and (on a disk miss) a single compilation — and every
// fresh compilation is written through to disk, so the artifact survives the
// process. A nil disk tier degrades to the memory tier alone. A TieredCache
// is safe for concurrent use.
type TieredCache struct {
	mem      *Cache
	tupleMem *tupleMemCache // k-ary artifacts, same tiering (see tuplecache.go)
	disk     *DiskCache
}

// NewTieredCache composes the two tiers; disk may be nil. The tuple memory
// tier shares the single-pivot tier's capacity.
func NewTieredCache(mem *Cache, disk *DiskCache) *TieredCache {
	return &TieredCache{mem: mem, tupleMem: newTupleMemCache(mem.capacity), disk: disk}
}

// Mem returns the memory tier.
func (t *TieredCache) Mem() *Cache { return t.mem }

// Disk returns the disk tier, or nil when running memory-only.
func (t *TieredCache) Disk() *DiskCache { return t.disk }

// Tier names for LoadCtx attribution: which tier satisfied a load.
const (
	TierMemory  = "memory"
	TierDisk    = "disk"
	TierCompile = "compile"
)

// Load returns the artifact for the persisted expression src over
// sigmaNames: from memory if resident, else decoded from disk (and
// re-admitted to memory), else compiled (and written through to both
// tiers). opt bounds the work of this call only; artifacts are stored with
// any deadline stripped. Disk write failures are deliberately swallowed —
// the disk tier is an optimization, and a full or read-only volume must not
// fail requests that compiled fine.
func (t *TieredCache) Load(src string, sigmaNames []string, opt machine.Options) (*Compiled, error) {
	c, _, err := t.loadTier(src, sigmaNames, opt)
	return c, err
}

// LoadCtx is Load under request-path observability: the lookup runs as a
// "cache.lookup" phase whose span records the satisfying tier (and joins the
// request's trace when ctx carries one), and the
// extract_tiered_load_total{tier=…} counter attributes load traffic per
// tier. The tier also fills any note slot installed by WithTierNote.
func (t *TieredCache) LoadCtx(ctx context.Context, src string, sigmaNames []string, opt machine.Options) (*Compiled, error) {
	ctx, ph := obs.StartPhase(ctx, "cache.lookup")
	c, tier, err := t.loadTier(src, sigmaNames, opt)
	ph.Str("tier", tier)
	ph.Fail(err)
	ph.Count(obs.WithLabels("extract_tiered_load_total", "tier", tier), 1)
	ph.End()
	if slot, ok := ctx.Value(tierNoteKey{}).(*string); ok {
		*slot = tier
	}
	return c, err
}

// loadTier is the shared load path, additionally reporting which tier
// satisfied the call. Joining another caller's in-flight compile counts as a
// memory hit, matching the memory tier's own hit accounting.
func (t *TieredCache) loadTier(src string, sigmaNames []string, opt machine.Options) (*Compiled, string, error) {
	key, err := Key(src, sigmaNames)
	if err != nil {
		return nil, TierMemory, err
	}
	tier := TierMemory
	c, err := t.mem.GetOrCompile(key, func() (*Compiled, error) {
		if t.disk != nil {
			if c, ok := t.disk.Get(key, opt); ok {
				tier = TierDisk
				return c, nil
			}
		}
		tier = TierCompile
		c, err := CompileArtifact(src, sigmaNames, opt)
		if err == nil && t.disk != nil {
			t.disk.Put(key, c) //nolint:errcheck // best-effort write-through
		}
		return c, err
	})
	return c, tier, err
}

type tierNoteKey struct{}

// WithTierNote returns a context carrying a slot that LoadCtx fills with the
// tier that satisfied the load — how a caller several layers above the cache
// (serve's wide request events) learns where a registration's compile went
// without threading a return value through the ArtifactCache interface.
func WithTierNote(ctx context.Context) (context.Context, *string) {
	slot := new(string)
	return context.WithValue(ctx, tierNoteKey{}, slot), slot
}

// Stats returns the memory tier's counters (the tier requests hit first);
// use Disk().Stats() for the disk tier.
func (t *TieredCache) Stats() CacheStats { return t.mem.Stats() }

// FlushMem evicts every artifact — single-pivot and tuple — from the
// memory tiers, reporting how many were dropped. The disk tier is
// untouched, so the next load of a flushed key decodes from disk instead of
// recompiling — the restart-shaped cold path, exercisable without a
// restart.
func (t *TieredCache) FlushMem() int { return t.mem.Flush() + t.tupleMem.flush() }
