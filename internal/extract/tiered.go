package extract

import "resilex/internal/machine"

// ArtifactCache is the serving-path contract the wrapper layer loads
// through: hand back the compiled artifact for a persisted expression,
// however many tiers that takes. *Cache (memory only) and *TieredCache
// (memory over disk) both implement it.
type ArtifactCache interface {
	Load(src string, sigmaNames []string, opt machine.Options) (*Compiled, error)
}

// TieredCache composes the in-memory LRU with the disk tier under one
// content-addressed key space: memory → disk → compile. The memory tier's
// singleflight is preserved — concurrent cold misses on one key collapse to
// a single disk probe and (on a disk miss) a single compilation — and every
// fresh compilation is written through to disk, so the artifact survives the
// process. A nil disk tier degrades to the memory tier alone. A TieredCache
// is safe for concurrent use.
type TieredCache struct {
	mem  *Cache
	disk *DiskCache
}

// NewTieredCache composes the two tiers; disk may be nil.
func NewTieredCache(mem *Cache, disk *DiskCache) *TieredCache {
	return &TieredCache{mem: mem, disk: disk}
}

// Mem returns the memory tier.
func (t *TieredCache) Mem() *Cache { return t.mem }

// Disk returns the disk tier, or nil when running memory-only.
func (t *TieredCache) Disk() *DiskCache { return t.disk }

// Load returns the artifact for the persisted expression src over
// sigmaNames: from memory if resident, else decoded from disk (and
// re-admitted to memory), else compiled (and written through to both
// tiers). opt bounds the work of this call only; artifacts are stored with
// any deadline stripped. Disk write failures are deliberately swallowed —
// the disk tier is an optimization, and a full or read-only volume must not
// fail requests that compiled fine.
func (t *TieredCache) Load(src string, sigmaNames []string, opt machine.Options) (*Compiled, error) {
	key, err := Key(src, sigmaNames)
	if err != nil {
		return nil, err
	}
	return t.mem.GetOrCompile(key, func() (*Compiled, error) {
		if t.disk != nil {
			if c, ok := t.disk.Get(key, opt); ok {
				return c, nil
			}
		}
		c, err := CompileArtifact(src, sigmaNames, opt)
		if err == nil && t.disk != nil {
			t.disk.Put(key, c) //nolint:errcheck // best-effort write-through
		}
		return c, err
	})
}

// Stats returns the memory tier's counters (the tier requests hit first);
// use Disk().Stats() for the disk tier.
func (t *TieredCache) Stats() CacheStats { return t.mem.Stats() }
