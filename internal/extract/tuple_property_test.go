package extract

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"resilex/internal/rx"
	"resilex/internal/symtab"
)

// randomTupleValue generates small random 2-mark tuples for property tests.
type randomTupleValue struct {
	segs [3]*rx.Node
}

func (randomTupleValue) Generate(rng *rand.Rand, size int) reflect.Value {
	tab := symtab.NewTable()
	syms := tab.InternAll("p", "q")
	var v randomTupleValue
	for i := range v.segs {
		v.segs[i] = genNode(rng, syms, 1+rng.Intn(2))
	}
	return reflect.ValueOf(v)
}

// Property: tuple unambiguity agrees with the brute-force vector-counting
// oracle on all short words.
func TestQuickTupleUnambiguity(t *testing.T) {
	e, cfg := quickEnv()
	words := allWords(e.sigma2, 6)
	prop := func(v randomTupleValue) bool {
		tp, err := NewTupleFromASTs(v.segs[:], []symtab.Symbol{e.p, e.p}, e.sigma2, machineOpts())
		if err != nil {
			return true
		}
		unamb, err := tp.Unambiguous()
		if err != nil {
			return true
		}
		for _, w := range words {
			n := len(oracleVectors(tp, w))
			if n >= 2 && unamb {
				t.Logf("Unambiguous=true but %q has %d vectors (tuple %s)",
					e.tab.String(w), n, tp.String(e.tab))
				return false
			}
		}
		// If declared ambiguous but no short witness exists, that may be a
		// longer witness — cross-check with Positions multiplicity instead:
		// any word with a mark having ≥2 feasible positions confirms.
		if !unamb {
			for _, w := range words {
				pos, err := tp.Positions(w)
				if err != nil {
					return true
				}
				for _, ps := range pos {
					if len(ps) >= 2 {
						return true // confirmed
					}
				}
			}
			// No confirmation within length 6; acceptable (longer witness),
			// do not fail.
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Positions agrees with the oracle's per-mark projection.
func TestQuickTuplePositions(t *testing.T) {
	e, cfg := quickEnv()
	words := allWords(e.sigma2, 5)
	prop := func(v randomTupleValue) bool {
		tp, err := NewTupleFromASTs(v.segs[:], []symtab.Symbol{e.p, e.q}, e.sigma2, machineOpts())
		if err != nil {
			return true
		}
		for _, w := range words {
			vectors := oracleVectors(tp, w)
			want := map[int]map[int]bool{}
			for _, vec := range vectors {
				for j, i := range vec {
					if want[j] == nil {
						want[j] = map[int]bool{}
					}
					want[j][i] = true
				}
			}
			got, err := tp.Positions(w)
			if err != nil {
				return true
			}
			for j := range got {
				if len(got[j]) != len(want[j]) {
					t.Logf("mismatch on %q mark %d: got %v want %v (tuple %s)",
						e.tab.String(w), j, got[j], want[j], tp.String(e.tab))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
