package extract

import (
	"errors"
	"testing"

	"resilex/internal/machine"
)

// requireMaximizedProperly asserts the Proposition 6.5 contract: the output
// generalizes the input, is unambiguous, and is maximal.
func requireMaximizedProperly(t *testing.T, in, out Expr, label string) {
	t.Helper()
	if g, err := out.Generalizes(in); err != nil || !g {
		t.Fatalf("%s: output does not generalize input (%v, %v)", label, g, err)
	}
	unamb, err := out.Unambiguous()
	if err != nil || !unamb {
		t.Fatalf("%s: output not unambiguous (%v, %v)", label, unamb, err)
	}
	m, err := out.Maximal()
	if err != nil || !m {
		t.Fatalf("%s: output not maximal (%v, %v)", label, m, err)
	}
}

func TestLeftFilterExample47(t *testing.T) {
	e := newTenv()
	in := e.expr(t, "q p <p> .*", e.sigma2)
	out, err := LeftFilter(in)
	if err != nil {
		t.Fatal(err)
	}
	requireMaximizedProperly(t, in, out, "qp⟨p⟩Σ*")
	// Algorithm trace for E = {qp}: F = E/(p·Σ*) = {q}; R₀ = q* − q;
	// R₁ = q·p·q*; E' = (q* − q) | q p q*  (qp ⊂ qpq*).
	want := e.expr(t, "((q* - q) | q p q*) <p> .*", e.sigma2)
	if !out.Left().Equal(want.Left()) {
		t.Errorf("E' = %s, want %s", out.String(e.tab), want.String(e.tab))
	}
	// On words the input parses (qp·p·β) the output extracts the same
	// position.
	w := e.word(t, "q p p q")
	pi, ok := in.Extract(w)
	if !ok || pi != 2 {
		t.Fatalf("input extraction = (%d,%v), want (2,true)", pi, ok)
	}
	po, ok := out.Extract(w)
	if !ok || pi != po {
		t.Errorf("extraction changed: %d vs %d", pi, po)
	}
	// And it now parses strings the input could not.
	if !out.Parses(e.word(t, "q q p")) {
		t.Error("maximized expression should parse qqp")
	}
}

// Example 4.7: maximization is not unique — the same input also maximizes
// to (Σ−p)*·p·(Σ−p)*⟨p⟩Σ*, a different maximal generalization. (E5)
func TestMaximizationNotUnique(t *testing.T) {
	e := newTenv()
	in := e.expr(t, "q p <p> .*", e.sigma2)
	algo, err := LeftFilter(in)
	if err != nil {
		t.Fatal(err)
	}
	manual := e.expr(t, "[^ p]* p [^ p]* <p> .*", e.sigma2)
	requireMaximizedProperly(t, in, manual, "manual maximization")
	if algo.Equal(manual) {
		t.Fatal("expected two distinct maximal generalizations")
	}
	// Both being maximal, neither generalizes the other strictly.
	if g, _ := algo.Generalizes(manual); g {
		t.Error("algo ⪰ manual contradicts maximality of manual")
	}
	if g, _ := manual.Generalizes(algo); g {
		t.Error("manual ⪰ algo contradicts maximality of algo")
	}
}

// An infinite family of maximal generalizations of qp⟨p⟩Σ* (Example 4.7
// "…has an infinite number of maximal expressions"): for each k ≥ 1,
// Mₖ = (Σ−p)*·p·(q^k)*·(ε|q|…|q^(k−1))... — simpler: q^j p (Σ−p)* shifted
// families. We verify three distinct maximal generalizations exist.
func TestInfiniteFamilyOfMaximizations(t *testing.T) {
	e := newTenv()
	in := e.expr(t, "q p <p> .*", e.sigma2)
	// Family member k: ((q* − q) | q p q* … ) produced by running the
	// defect/extend loop from different seed extensions of the input.
	seen := []Expr{}
	seeds := [][]string{
		nil,           // plain LeftFilter
		{"q q q"},     // extend left with qqq first
		{"q q q q q"}, // a different seed
	}
	for _, seed := range seeds {
		x := in
		for _, s := range seed {
			y, err := x.Extend(e.word(t, s), "left")
			if err != nil {
				t.Fatal(err)
			}
			if unamb, _ := y.Unambiguous(); !unamb {
				t.Fatalf("seed %v made the expression ambiguous", seed)
			}
			x = y
		}
		out, err := LeftFilter(x)
		if err != nil {
			t.Fatal(err)
		}
		requireMaximizedProperly(t, in, out, "family member")
		seen = append(seen, out)
	}
	// At least two distinct ones (the seeds qqq/qqqqq land in R₀ anyway, so
	// equality among some members is possible; require ≥ 2 distinct overall
	// adding the manual one).
	manual := e.expr(t, "[^ p]* p [^ p]* <p> .*", e.sigma2)
	seen = append(seen, manual)
	distinct := 0
	for i := range seen {
		dup := false
		for j := 0; j < i; j++ {
			if seen[i].Equal(seen[j]) {
				dup = true
				break
			}
		}
		if !dup {
			distinct++
		}
	}
	if distinct < 2 {
		t.Errorf("found only %d distinct maximal generalizations", distinct)
	}
}

func TestLeftFilterPreconditions(t *testing.T) {
	e := newTenv()
	// Ambiguous input.
	if _, err := LeftFilter(e.expr(t, "p* <p> p*", e.sigma2)); !errors.Is(err, ErrAmbiguous) {
		t.Errorf("ambiguous: err = %v", err)
	}
	// Unbounded p in E with right already Σ*.
	if _, err := LeftFilter(e.expr(t, "(q p)* <p> .*", e.sigma2)); !errors.Is(err, ErrUnbounded) {
		t.Errorf("unbounded: err = %v", err)
	}
	// Gap non-empty: (p|pp)⟨p⟩q is unambiguous, but widening the right side
	// to Σ* would create ambiguity, so left-filtering is inapplicable.
	if _, err := LeftFilter(e.expr(t, "(p | p p) <p> q", e.sigma2)); !errors.Is(err, ErrNotApplicable) {
		t.Errorf("gap: err = %v", err)
	}
}

func TestLeftFilterFixpoint(t *testing.T) {
	e := newTenv()
	// Running the algorithm on an already-maximal expression returns an
	// equal expression (maximality leaves nothing to add).
	in := e.expr(t, "[^ p]* p [^ p]* <p> .*", e.sigma2)
	out, err := LeftFilter(in)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(in) {
		t.Errorf("LeftFilter moved a maximal expression: %s", out.String(e.tab))
	}
}

func TestLeftFilterSweep(t *testing.T) {
	e := newTenv()
	// A family of bounded-p inputs; every output must satisfy the contract.
	srcs := []string{
		"q <p> .*",
		"q q <p> .*",
		"(q | q q) <p> .*",
		"q p q <p> .*",
		"q* p q <p> .*",
		"(q | p q) <p> .*",
		"q* <p> .*",
		"<p> .*",
		"(q p | q q p) q <p> .*",
	}
	for _, src := range srcs {
		in := e.expr(t, src, e.sigma2)
		if unamb, _ := in.Unambiguous(); !unamb {
			t.Fatalf("sweep input %q ambiguous — fix the test", src)
		}
		out, err := LeftFilter(in)
		if err != nil {
			t.Fatalf("LeftFilter(%q): %v", src, err)
		}
		requireMaximizedProperly(t, in, out, src)
		// Extraction on parsed words is preserved (the ⪯ order guarantee).
		for _, w := range allWords(e.sigma2, 5) {
			if pi, ok := in.Extract(w); ok {
				po, ok2 := out.Extract(w)
				if !ok2 || po != pi {
					t.Fatalf("%q: extraction on %q changed from %d to (%d,%v)",
						src, e.tab.String(w), pi, po, ok2)
				}
			}
		}
	}
}

func TestRightFilter(t *testing.T) {
	e := newTenv()
	// Mirror case: (p|pp)⟨p⟩q fails left-filtering (gap) but right-filters.
	in := e.expr(t, "(p | p p) <p> q", e.sigma2)
	out, err := RightFilter(in)
	if err != nil {
		t.Fatal(err)
	}
	requireMaximizedProperly(t, in, out, "(p|pp)⟨p⟩q")
	if !out.Left().IsUniversal() {
		t.Error("right-filtered output should have Σ* on the left")
	}
	// Extraction preserved.
	w := e.word(t, "p p p q")
	pi, _ := in.Extract(w)
	po, ok := out.Extract(w)
	if !ok || po != pi {
		t.Errorf("extraction changed: %d → %d (%v)", pi, po, ok)
	}
}

func TestMaximizeDispatch(t *testing.T) {
	e := newTenv()
	cases := []string{
		"q p <p> .*",        // plain left-filter territory
		"(p | p p) <p> q",   // needs the mirror
		"(p q)* r q <p> .*", // needs pivots (unbounded p on the left)
	}
	for _, src := range cases {
		in := e.expr(t, src, e.sigma3)
		out, err := Maximize(in)
		if err != nil {
			t.Fatalf("Maximize(%q): %v", src, err)
		}
		requireMaximizedProperly(t, in, out, src)
	}
	// Ambiguous input is rejected up front.
	if _, err := Maximize(e.expr(t, ".* <p> .*", e.sigma2)); !errors.Is(err, ErrAmbiguous) {
		t.Errorf("Maximize ambiguous: %v", err)
	}
}

func TestMaximizeBudgetSurfacing(t *testing.T) {
	e := newTenv()
	// With a tiny state budget, maximization reports a budget error rather
	// than wrong output.
	in, err := Parse("q p <p> .*", e.tab, e.sigma2, machine.Options{MaxStates: 3})
	if err != nil {
		// Even parsing may exhaust 3 states; that's an acceptable surfacing.
		if !errors.Is(err, machine.ErrBudget) {
			t.Fatalf("unexpected error: %v", err)
		}
		return
	}
	if _, err := LeftFilter(in); err == nil {
		t.Skip("budget unexpectedly sufficient")
	} else if !errors.Is(err, machine.ErrBudget) {
		t.Errorf("err = %v, want budget error", err)
	}
}
