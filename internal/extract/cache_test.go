package extract

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"resilex/internal/machine"
	"resilex/internal/obs"
	"resilex/internal/symtab"
)

func TestKeyCanonical(t *testing.T) {
	base, err := Key("q* <p> .*", []string{"p", "q", "r"})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		src   string
		sigma []string
		same  bool
	}{
		{"identical", "q* <p> .*", []string{"p", "q", "r"}, true},
		{"sigma order", "q* <p> .*", []string{"r", "q", "p"}, true},
		{"sigma dup", "q* <p> .*", []string{"p", "q", "q", "r"}, true},
		{"union operand order", "(q | r)* <p> .*", []string{"p", "q", "r"}, false}, // differs from base, but see below
		{"different expr", "r* <p> .*", []string{"p", "q", "r"}, false},
		{"different sigma", "q* <p> .*", []string{"p", "q"}, false},
	}
	for _, c := range cases {
		got, err := Key(c.src, c.sigma)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if (got == base) != c.same {
			t.Errorf("%s: key equality = %v, want %v", c.name, got == base, c.same)
		}
	}
	// Union commutativity: operand order must not change the address.
	a, err := Key("(q | r)* <p> .*", []string{"p", "q", "r"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Key("(r | q)* <p> .*", []string{"q", "r", "p"})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("union operand order changed the key: %s vs %s", a, b)
	}
	if _, err := Key("(((", []string{"p"}); err == nil {
		t.Error("unparseable expression produced a key")
	}
}

func TestCacheLRUAndStats(t *testing.T) {
	o := obs.New()
	c := NewCache(2, o)
	load := func(i int) {
		t.Helper()
		// Syntactically distinct prefixes — ".*" vs "(q|p)*" would collide,
		// which is the cache working, not three artifacts.
		src := fmt.Sprintf("%s <p> .*", []string{"q*", "(q q)*", "q? q*"}[i])
		if _, err := c.Load(src, []string{"p", "q"}, machine.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	load(0) // miss
	load(0) // hit
	load(1) // miss
	load(2) // miss, evicts artifact 0
	load(0) // miss again (was evicted)
	s := c.Stats()
	want := CacheStats{Hits: 1, Misses: 4, Evictions: 2, Entries: 2}
	if s != want {
		t.Errorf("Stats() = %+v, want %+v", s, want)
	}
	if got := s.HitRate(); got != 0.2 {
		t.Errorf("HitRate() = %v, want 0.2", got)
	}
	if c.Len() != 2 {
		t.Errorf("Len() = %d, want 2", c.Len())
	}
	// The same numbers must be visible through the observer registry.
	snap := o.Metrics.Snapshot()
	for name, want := range map[string]int64{
		"extract_cache_hits_total":      1,
		"extract_cache_misses_total":    4,
		"extract_cache_evictions_total": 2,
	} {
		if snap.Counters[name] != want {
			t.Errorf("counter %s = %d, want %d", name, snap.Counters[name], want)
		}
	}
	if snap.Gauges["extract_cache_entries"] != 2 {
		t.Errorf("gauge extract_cache_entries = %d, want 2", snap.Gauges["extract_cache_entries"])
	}
}

// TestCacheSingleflight hammers one cold key from many goroutines: the
// compile function must run exactly once, and every caller must receive the
// same artifact. Run under -race by make race.
func TestCacheSingleflight(t *testing.T) {
	c := NewCache(8, nil)
	key, err := Key("q* <p> .*", []string{"p", "q"})
	if err != nil {
		t.Fatal(err)
	}
	var compiles atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]*Compiled, 16)
	for g := range results {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-gate
			comp, err := c.GetOrCompile(key, func() (*Compiled, error) {
				compiles.Add(1)
				return CompileArtifact("q* <p> .*", []string{"p", "q"}, machine.Options{})
			})
			if err != nil {
				t.Error(err)
				return
			}
			results[g] = comp
		}(g)
	}
	close(gate)
	wg.Wait()
	if n := compiles.Load(); n != 1 {
		t.Errorf("compile ran %d times, want 1", n)
	}
	for g, comp := range results {
		if comp != results[0] {
			t.Errorf("goroutine %d got a different artifact", g)
		}
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 15 {
		t.Errorf("hits/misses = %d/%d, want 15/1", s.Hits, s.Misses)
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	c := NewCache(4, nil)
	boom := errors.New("boom")
	calls := 0
	fail := func() (*Compiled, error) { calls++; return nil, boom }
	if _, err := c.GetOrCompile("k", fail); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, err := c.GetOrCompile("k", fail); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom on retry", err)
	}
	if calls != 2 {
		t.Errorf("compile ran %d times, want 2 (errors must not be cached)", calls)
	}
	if c.Len() != 0 {
		t.Errorf("Len() = %d, want 0", c.Len())
	}
}

// TestCachedArtifactDropsDeadline: a cache entry compiled under a request
// context must stay usable after that request's deadline passes.
func TestCachedArtifactDropsDeadline(t *testing.T) {
	c := NewCache(4, nil)
	ctx, cancel := context.WithCancel(context.Background())
	comp, err := c.Load("q* <p> .*", []string{"p", "q"}, machine.Options{Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	cancel() // the compiling request's context dies
	if err := comp.Expr.Options().Err(); err != nil {
		t.Fatalf("cached expression still carries a dead context: %v", err)
	}
	q := comp.Tab.Lookup("q")
	p := comp.Tab.Lookup("p")
	if pos, ok := comp.Matcher.Find([]symtab.Symbol{q, p, q}); !ok || pos != 1 {
		t.Errorf("Find = %d,%v; want 1,true", pos, ok)
	}
}
