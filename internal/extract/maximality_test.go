package extract

import (
	"errors"
	"strings"
	"testing"
)

func TestMaximalCatalog(t *testing.T) {
	e := newTenv()
	cases := []struct {
		src     string
		maximal bool
	}{
		// Example 4.6: (Σ−p)*⟨p⟩Σ* is maximal.
		{"[^ p]* <p> .*", true},
		// Example 4.6: (qp)*·((Σ−p)*−q)⟨p⟩Σ* is maximal.
		{"(q p)* ([^ p]* - q) <p> .*", true},
		// Example 4.7: qp⟨p⟩Σ* is unambiguous but NOT maximal.
		{"q p <p> .*", false},
		// Example 4.7's first maximization: (Σ−p)*·p·(Σ−p)*⟨p⟩Σ*.
		{"[^ p]* p [^ p]* <p> .*", true},
		// Small non-maximal expressions.
		{"q <p> q", false},
		{"<p>", false},
		{"p <p> p p p", false},
		// Mirror-image maximal form.
		{".* <p> [^ p]*", true},
	}
	for _, c := range cases {
		x := e.expr(t, c.src, e.sigma2)
		got, err := x.Maximal()
		if err != nil {
			t.Fatalf("Maximal(%q): %v", c.src, err)
		}
		if got != c.maximal {
			t.Errorf("Maximal(%q) = %v, want %v", c.src, got, c.maximal)
		}
	}
}

// Proposition 5.11: (Σ−p)*⟨p⟩E is maximal iff L(E) = Σ*.
func TestProposition511(t *testing.T) {
	e := newTenv()
	cases := []struct {
		right string
		want  bool
	}{
		{".*", true},
		{"q*", false},
		{"(p | q)*", true}, // equals Σ* over {p,q}
		{"#eps", false},
		{"(q .* | #eps | p .*)", true}, // Σ* in disguise: ε | pΣ* | qΣ*
	}
	for _, c := range cases {
		x := e.expr(t, "[^ p]* <p> "+c.right, e.sigma2)
		unamb, err := x.Unambiguous()
		if err != nil || !unamb {
			t.Fatalf("Lemma 5.10 violated: (Σ−p)*⟨p⟩%s not unambiguous (%v)", c.right, err)
		}
		got, err := x.Maximal()
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Maximal((Σ−p)*⟨p⟩%s) = %v, want %v", c.right, got, c.want)
		}
	}
}

func TestMaximalRequiresUnambiguous(t *testing.T) {
	e := newTenv()
	x := e.expr(t, "p* <p> p*", e.sigma2)
	if _, err := x.Maximal(); !errors.Is(err, ErrAmbiguous) {
		t.Errorf("Maximal on ambiguous expression: err = %v, want ErrAmbiguous", err)
	}
	if _, _, _, err := x.MaximalityDefect(); !errors.Is(err, ErrAmbiguous) {
		t.Errorf("MaximalityDefect on ambiguous expression: err = %v", err)
	}
}

// The defect/extend loop realizes the proof of Proposition 5.7: each defect
// ρ yields a strictly larger unambiguous expression.
func TestDefectExtendLoop(t *testing.T) {
	e := newTenv()
	x := e.expr(t, "q p <p> .*", e.sigma2)
	for step := 0; step < 6; step++ {
		rho, side, ok, err := x.MaximalityDefect()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			// Reached a maximal point.
			m, err := x.Maximal()
			if err != nil || !m {
				t.Fatalf("no defect but not maximal (%v, %v)", m, err)
			}
			return
		}
		y, err := x.Extend(rho, side)
		if err != nil {
			t.Fatal(err)
		}
		// Strictly generalizes and stays unambiguous (Proposition 5.7 proof).
		if g, _ := y.Generalizes(x); !g {
			t.Fatal("extension does not generalize")
		}
		if g, _ := x.Generalizes(y); g {
			t.Fatal("extension not strict")
		}
		unamb, err := y.Unambiguous()
		if err != nil || !unamb {
			t.Fatalf("extension ambiguous (%v, %v)", unamb, err)
		}
		x = y
	}
	// Six steps without reaching maximality is fine — the chain can be
	// infinite (Example 4.7) — but every step must have been sound, which
	// the assertions above verified.
}

func TestDefectOnMaximal(t *testing.T) {
	e := newTenv()
	x := e.expr(t, "[^ p]* <p> .*", e.sigma2)
	_, _, ok, err := x.MaximalityDefect()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("maximal expression reported a defect")
	}
}

// Maximality of an expression over a singleton alphabet {p}: ⟨p⟩ cannot be
// maximal (pp⟨p⟩... ambiguity constraints), but (ε)⟨p⟩p* … exercise edge
// alphabet handling: Σ = {p}.
func TestSingletonAlphabet(t *testing.T) {
	e := newTenv()
	sigma := e.sigma2.Without(e.q)
	x := e.expr(t, "<p> p*", sigma)
	unamb, err := x.Unambiguous()
	if err != nil {
		t.Fatal(err)
	}
	if !unamb {
		t.Fatal("⟨p⟩p* over {p} should be unambiguous (only the first p can match)")
	}
	m, err := x.Maximal()
	if err != nil {
		t.Fatal(err)
	}
	if !m {
		t.Error("⟨p⟩p* over {p} should be maximal: (Σ−p)* = {ε}")
	}
}

func TestExplain(t *testing.T) {
	e := newTenv()
	// Ambiguous expression: witness reported.
	d, err := e.expr(t, "p* <p> p*", e.sigma2).Explain()
	if err != nil {
		t.Fatal(err)
	}
	if d.Unambiguous || d.AmbiguityWitness == nil || len(d.WitnessPositions) < 2 {
		t.Errorf("ambiguous diagnosis = %+v", d)
	}
	if s := d.Format(e.tab); !strings.Contains(s, "witness") {
		t.Errorf("format missing witness: %s", s)
	}
	// Unambiguous, not maximal: defect reported, bounded, streamable.
	d, err = e.expr(t, "q p <p> .*", e.sigma2).Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !d.Unambiguous || d.Maximal || d.DefectSide == "" || !d.BoundedMarks || d.Bound != 1 || !d.Streamable {
		t.Errorf("diagnosis = %+v", d)
	}
	// Maximal with unbounded prefix marks... (Σ−p)* has bound 0; use the
	// pivot family for unboundedness.
	d, err = e.expr(t, "(p q)* r q <p> .*", e.sigma3).Explain()
	if err != nil {
		t.Fatal(err)
	}
	if d.BoundedMarks {
		t.Error("pivot-family prefix should be unbounded")
	}
	if s := d.Format(e.tab); !strings.Contains(s, "pivot framework") {
		t.Errorf("format missing pivot hint: %s", s)
	}
	// Maximal expression: clean bill.
	d, err = e.expr(t, "[^ p]* <p> .*", e.sigma2).Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !d.Maximal || !d.Streamable {
		t.Errorf("maximal diagnosis = %+v", d)
	}
	// Non-streamable suffix.
	d, err = e.expr(t, "q <p> q", e.sigma2).Explain()
	if err != nil {
		t.Fatal(err)
	}
	if d.Streamable {
		t.Error("q suffix reported streamable")
	}
}
