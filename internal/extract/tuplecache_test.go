package extract

import (
	"os"
	"path/filepath"
	"testing"

	"resilex/internal/machine"
)

func TestTieredTupleLoad(t *testing.T) {
	disk, err := NewDiskCache(t.TempDir(), -1, nil)
	if err != nil {
		t.Fatal(err)
	}
	tc := NewTieredCache(NewCache(4, nil), disk)
	src, names := "q* <p> q* <r> .*", []string{"p", "q", "r"}

	c1, err := tc.LoadTuple(src, names, machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if disk.Len() != 1 {
		t.Fatalf("disk entries after cold load = %d, want 1 (write-through)", disk.Len())
	}
	c2, err := tc.LoadTuple(src, names, machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("second load did not hit the memory tier")
	}

	// Flushing memory forces the next load through the disk tier.
	if n := tc.FlushMem(); n < 1 {
		t.Fatalf("FlushMem dropped %d entries, want ≥ 1", n)
	}
	before := disk.Stats().Hits
	c3, err := tc.LoadTuple(src, names, machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if disk.Stats().Hits != before+1 {
		t.Fatal("post-flush load did not hit the disk tier")
	}
	for j := 0; j <= c1.Tuple.Arity(); j++ {
		if !machine.StructurallyEqual(c3.Tuple.Segment(j).DFA(), c1.Tuple.Segment(j).DFA()) {
			t.Fatalf("disk-decoded segment %d disagrees with the compiled original", j)
		}
	}

	// Eviction only drops memory residency.
	if !tc.EvictTuple(src, names) {
		t.Fatal("EvictTuple missed a resident key")
	}
	if tc.EvictTuple(src, names) {
		t.Fatal("EvictTuple hit after eviction")
	}
}

// TestTupleDiskCorruption: a damaged tuple blob is discarded and recompiled
// rather than served.
func TestTupleDiskCorruption(t *testing.T) {
	dir := t.TempDir()
	disk, err := NewDiskCache(dir, -1, nil)
	if err != nil {
		t.Fatal(err)
	}
	tc := NewTieredCache(NewCache(4, nil), disk)
	src, names := ".* <p> .* <p> .*", []string{"p", "q"}
	if _, err := tc.LoadTuple(src, names, machine.Options{}); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*"+artifactExt))
	if err != nil || len(files) != 1 {
		t.Fatalf("glob = %v, %v", files, err)
	}
	if err := os.WriteFile(files[0], []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	tc.FlushMem()
	if _, err := tc.LoadTuple(src, names, machine.Options{}); err != nil {
		t.Fatalf("load over a corrupt blob should recompile, got %v", err)
	}
	if disk.Stats().Corrupt != 1 {
		t.Fatalf("corrupt count = %d, want 1", disk.Stats().Corrupt)
	}
}

// TestTupleAndSingleShareDiskDir: the two artifact kinds coexist under one
// directory without aliasing each other's keys.
func TestTupleAndSingleShareDiskDir(t *testing.T) {
	disk, err := NewDiskCache(t.TempDir(), -1, nil)
	if err != nil {
		t.Fatal(err)
	}
	tc := NewTieredCache(NewCache(4, nil), disk)
	src, names := "q* <p> q*", []string{"p", "q"} // parses under both grammars
	if _, err := tc.Load(src, names, machine.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.LoadTuple(src, names, machine.Options{}); err != nil {
		t.Fatal(err)
	}
	if disk.Len() != 2 {
		t.Fatalf("disk entries = %d, want 2 (domain-separated keys)", disk.Len())
	}
	tc.FlushMem()
	if _, err := tc.Load(src, names, machine.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.LoadTuple(src, names, machine.Options{}); err != nil {
		t.Fatal(err)
	}
	if disk.Stats().Corrupt != 0 {
		t.Fatalf("corrupt = %d, want 0", disk.Stats().Corrupt)
	}
}
