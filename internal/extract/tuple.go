package extract

import (
	"fmt"

	"resilex/internal/lang"
	"resilex/internal/machine"
	"resilex/internal/rx"
	"resilex/internal/symtab"
)

// Tuple is a multi-slot extraction expression
//
//	E0⟨p1⟩E1⟨p2⟩E2 … ⟨pk⟩Ek
//
// extracting k positions i1 < i2 < … < ik from a word w with w[ij] = pj and
// every gap w(i_{j-1}, i_j) in L(E_{j-1}). This generalizes the paper's
// single-mark model to the tuples real wrappers extract (the paper's §2
// notes competing systems are tuple-oriented); the single-mark theory lifts:
// unambiguity is decidable in polynomial time by a squared-automaton
// construction, and segment-wise maximization preserves unambiguity by
// iterated composition (Proposition 6.6).
type Tuple struct {
	segs  []lang.Language
	marks []symtab.Symbol
	sigma symtab.Alphabet
	opt   machine.Options

	segASTs []*rx.Node // optional syntax, parallel to segs (nil entries allowed)
}

// NewTuple builds a tuple expression; len(segments) must equal len(marks)+1.
func NewTuple(segments []lang.Language, marks []symtab.Symbol) (*Tuple, error) {
	if len(segments) != len(marks)+1 {
		return nil, fmt.Errorf("extract: tuple needs len(segments) = len(marks)+1, got %d and %d",
			len(segments), len(marks))
	}
	if len(marks) == 0 {
		return nil, fmt.Errorf("extract: tuple needs at least one mark")
	}
	sigma := symtab.NewAlphabet(marks...)
	for _, s := range segments {
		sigma = sigma.Union(s.Sigma())
	}
	t := &Tuple{marks: marks, sigma: sigma, opt: segments[0].Options()}
	for _, s := range segments {
		t.segs = append(t.segs, promote(s, sigma))
	}
	return t, nil
}

// NewTupleFromASTs builds a tuple from segment syntax trees, retaining the
// ASTs so that MaximizeTuple can use the pivot framework on segments.
func NewTupleFromASTs(segments []*rx.Node, marks []symtab.Symbol, sigma symtab.Alphabet, opt machine.Options) (*Tuple, error) {
	if len(segments) != len(marks)+1 {
		return nil, fmt.Errorf("extract: tuple needs len(segments) = len(marks)+1, got %d and %d",
			len(segments), len(marks))
	}
	full := sigma.Union(symtab.NewAlphabet(marks...))
	for _, s := range segments {
		full = full.Union(s.Symbols())
	}
	segs := make([]lang.Language, len(segments))
	var err error
	for i, ast := range segments {
		segs[i], err = lang.FromRegex(ast, full, opt)
		if err != nil {
			return nil, fmt.Errorf("extract: tuple segment %d: %w", i, err)
		}
	}
	t, err := NewTuple(segs, marks)
	if err != nil {
		return nil, err
	}
	t.opt = opt
	t.segASTs = segments
	return t, nil
}

// ParseTuple parses the concrete syntax "E0 <p1> E1 <p2> E2 …".
func ParseTuple(src string, tab *symtab.Table, sigma symtab.Alphabet, opt machine.Options) (*Tuple, error) {
	m, err := rx.ParseMultiMarked(src, tab, sigma)
	if err != nil {
		return nil, err
	}
	segs := make([]lang.Language, len(m.Segments))
	for i, ast := range m.Segments {
		segs[i], err = lang.FromRegex(ast, m.Sigma, opt)
		if err != nil {
			return nil, fmt.Errorf("extract: tuple segment %d: %w", i, err)
		}
	}
	t, err := NewTuple(segs, m.Marks)
	if err != nil {
		return nil, err
	}
	t.opt = opt
	t.segASTs = m.Segments
	return t, nil
}

// Arity returns the number of marks k.
func (t *Tuple) Arity() int { return len(t.marks) }

// Marks returns the marked symbols in order.
func (t *Tuple) Marks() []symtab.Symbol { return append([]symtab.Symbol(nil), t.marks...) }

// Segment returns the j-th segment language (0 ≤ j ≤ Arity()).
func (t *Tuple) Segment(j int) lang.Language { return t.segs[j] }

// Sigma returns the alphabet.
func (t *Tuple) Sigma() symtab.Alphabet { return t.sigma }

// String renders the tuple in concrete syntax.
func (t *Tuple) String(tab *symtab.Table) string {
	out := ""
	for j := range t.segs {
		ast := t.segAST(j)
		txt := rx.PrintSigma(ast, tab, t.sigma)
		if txt != "#eps" {
			if out != "" {
				out += " "
			}
			out += txt
		}
		if j < len(t.marks) {
			if out != "" {
				out += " "
			}
			out += "<" + rx.QuoteName(tab.Name(t.marks[j])) + ">"
		}
	}
	return out
}

func (t *Tuple) segAST(j int) *rx.Node {
	if t.segASTs != nil && t.segASTs[j] != nil {
		return t.segASTs[j]
	}
	return rx.Simplify(t.segs[j].Regex())
}

// chain builds the concatenated NFA E0·p1·E1·…·pk·Ek with each mark edge
// recorded: markOf[(from,to)] = j+1 (0 = not a mark edge). States of the
// returned NFA are segment-local structures glued by the mark transitions.
type chainNFA struct {
	nfa *machine.NFA
	// markEdge[from] = list of (to, markIndex) mark transitions.
	markEdge map[int][]markHop
}

type markHop struct {
	to   int
	mark int // 1-based mark index
}

func (t *Tuple) chain() (*chainNFA, error) {
	out := &machine.NFA{Sigma: t.sigma}
	marks := map[int][]markHop{}
	addStates := func(n *machine.NFA) int {
		base := len(out.Accept)
		for s := 0; s < n.NumStates(); s++ {
			out.Accept = append(out.Accept, false)
			out.Eps = append(out.Eps, nil)
			out.Edges = append(out.Edges, nil)
		}
		for s := 0; s < n.NumStates(); s++ {
			for _, e := range n.Eps[s] {
				out.Eps[base+s] = append(out.Eps[base+s], base+e)
			}
			for _, e := range n.Edges[s] {
				out.Edges[base+s] = append(out.Edges[base+s], machine.Edge{On: e.On, To: base + e.To})
			}
		}
		return base
	}
	var prevAccepts []int
	for j, seg := range t.segs {
		n := machine.FromDFA(seg.DFA())
		base := addStates(n)
		if j == 0 {
			for _, s := range n.Start {
				out.Start = append(out.Start, base+s)
			}
		} else {
			// Glue: previous segment accepts --p_j--> this segment's starts.
			on := symtab.NewAlphabet(t.marks[j-1])
			for _, from := range prevAccepts {
				for _, s := range n.Start {
					out.Edges[from] = append(out.Edges[from], machine.Edge{On: on, To: base + s})
					marks[from] = append(marks[from], markHop{to: base + s, mark: j})
				}
			}
		}
		prevAccepts = prevAccepts[:0]
		for s := 0; s < n.NumStates(); s++ {
			if n.Accept[s] {
				prevAccepts = append(prevAccepts, base+s)
			}
		}
	}
	for _, s := range prevAccepts {
		out.Accept[s] = true
	}
	return &chainNFA{nfa: out, markEdge: marks}, nil
}

// Parses reports whether the word admits at least one extraction vector.
func (t *Tuple) Parses(word []symtab.Symbol) bool {
	c, err := t.chain()
	if err != nil {
		return false
	}
	return c.nfa.Accepts(word)
}

// Positions returns, per mark, every position that participates in some
// valid extraction vector (ascending). On an unambiguous tuple each list
// has length ≤ 1, and exactly 1 iff the word parses.
func (t *Tuple) Positions(word []symtab.Symbol) ([][]int, error) {
	c, err := t.chain()
	if err != nil {
		return nil, err
	}
	n := c.nfa
	ln := len(word)
	// Forward reachable sets per position.
	fwd := make([][]bool, ln+1)
	set := startBitset(n)
	fwd[0] = set
	for i := 0; i < ln; i++ {
		set = moveBitset(n, set, word[i])
		fwd[i+1] = set
	}
	// Backward co-accepting sets per position: bwd[i][s] ⟺ suffix word[i:]
	// accepted from s. ε-transitions need reverse closure.
	bwd := make([][]bool, ln+1)
	acc := make([]bool, n.NumStates())
	copy(acc, n.Accept)
	reverseEpsClose(n, acc)
	bwd[ln] = acc
	for i := ln - 1; i >= 0; i-- {
		prev := make([]bool, n.NumStates())
		for s := 0; s < n.NumStates(); s++ {
			for _, e := range n.Edges[s] {
				if e.On.Contains(word[i]) && bwd[i+1][e.To] {
					prev[s] = true
				}
			}
		}
		reverseEpsClose(n, prev)
		bwd[i] = prev
	}
	out := make([][]int, len(t.marks))
	for i := 0; i < ln; i++ {
		for from, hops := range c.markEdge {
			if !fwd[i][from] {
				continue
			}
			for _, h := range hops {
				if word[i] == t.marks[h.mark-1] && bwd[i+1][h.to] {
					out[h.mark-1] = appendUnique(out[h.mark-1], i)
				}
			}
		}
	}
	return out, nil
}

func appendUnique(xs []int, x int) []int {
	for _, y := range xs {
		if y == x {
			return xs
		}
	}
	return append(xs, x)
}

// Extract returns the unique extraction vector, or ok=false when the word
// does not parse. Calling Extract on an ambiguous tuple returns an error
// when the word exposes the ambiguity.
func (t *Tuple) Extract(word []symtab.Symbol) (vector []int, ok bool, err error) {
	pos, err := t.Positions(word)
	if err != nil {
		return nil, false, err
	}
	vector = make([]int, len(pos))
	for j, ps := range pos {
		switch len(ps) {
		case 0:
			return nil, false, nil
		case 1:
			vector[j] = ps[0]
		default:
			return nil, false, fmt.Errorf("extract: tuple is ambiguous on this word: mark %d fits positions %v", j+1, ps)
		}
	}
	return vector, true, nil
}

// Unambiguous decides whether every word admits at most one extraction
// vector, via the squared chain automaton: a reachable accepting state pair
// whose paths crossed differently-labeled mark edges at some shared input
// position witnesses two distinct vectors. Polynomial in the chain size —
// the tuple analogue of Theorem 5.6.
func (t *Tuple) Unambiguous() (bool, error) {
	c, err := t.chain()
	if err != nil {
		return false, err
	}
	n := c.nfa
	markOf := func(from, to int, sym symtab.Symbol) int {
		for _, h := range c.markEdge[from] {
			if h.to == to && sym == t.marks[h.mark-1] {
				return h.mark
			}
		}
		return 0
	}
	type pair struct {
		x, y     int
		diverged bool
	}
	seen := map[pair]bool{}
	var queue []pair
	push := func(p pair) {
		// (x,y) and (y,x) are symmetric; canonicalize to halve the space.
		if p.x > p.y {
			p.x, p.y = p.y, p.x
		}
		if !seen[p] {
			seen[p] = true
			queue = append(queue, p)
		}
	}
	for _, a := range n.Start {
		for _, b := range n.Start {
			push(pair{a, b, false})
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		p := queue[qi]
		if p.diverged && n.Accept[p.x] && n.Accept[p.y] {
			return false, nil
		}
		for _, e := range n.Eps[p.x] {
			push(pair{e, p.y, p.diverged})
		}
		for _, e := range n.Eps[p.y] {
			push(pair{p.x, e, p.diverged})
		}
		for _, ex := range n.Edges[p.x] {
			for _, ey := range n.Edges[p.y] {
				common := ex.On.Intersect(ey.On)
				for _, sym := range common.Symbols() {
					mx := markOf(p.x, ex.To, sym)
					my := markOf(p.y, ey.To, sym)
					push(pair{ex.To, ey.To, p.diverged || mx != my})
				}
			}
		}
	}
	return true, nil
}

// MaximizeTuple maximizes each segment against its following mark with
// Algorithm 6.2 (the last segment is widened to Σ*) and recomposes. The
// result is unambiguous (iterated Proposition 6.6), generalizes the input
// segment-wise, and every single-mark projection (prefix up to mark j,
// Σ* after) is maximal by iterated Proposition 6.7. Full tuple-maximality
// theory is beyond the paper; this is the conservative lift.
func MaximizeTuple(t *Tuple) (*Tuple, error) {
	if unamb, err := t.Unambiguous(); err != nil {
		return nil, err
	} else if !unamb {
		return nil, ErrAmbiguous
	}
	univ := lang.Universal(t.sigma, t.opt)
	outSegs := make([]lang.Language, len(t.segs))
	for j, seg := range t.segs {
		if j == len(t.segs)-1 {
			// Trailing context widens to Σ* (requires the usual gap condition
			// relative to the *previous* mark, ensured by tuple unambiguity).
			outSegs[j] = univ
			continue
		}
		var x Expr
		if ast := t.segASTs; ast != nil && ast[j] != nil {
			// Syntax available: the pivot framework can handle segments with
			// unboundedly many marks.
			var err error
			x, err = FromAST(ast[j], t.marks[j], rx.Star(rx.Class(t.sigma)), t.sigma, t.opt)
			if err != nil {
				return nil, fmt.Errorf("extract: tuple segment %d: %w", j, err)
			}
		} else {
			x = New(seg, t.marks[j], univ)
			x.opt = t.opt
		}
		maxed, err := Pivot(x)
		if err != nil {
			maxed, err = LeftFilter(x)
		}
		if err != nil {
			return nil, fmt.Errorf("extract: tuple segment %d: %w", j, err)
		}
		outSegs[j] = maxed.Left()
	}
	out, err := NewTuple(outSegs, t.marks)
	if err != nil {
		return nil, err
	}
	out.opt = t.opt
	// Invariant check: each seg'_j⟨mark_j⟩Σ* is unambiguous (LeftFilter
	// guarantees it), and segment unambiguity implies tuple unambiguity by
	// the inductive argument of Proposition 6.8 — a failure here would be a
	// bug, not a property of the input.
	unamb, err := out.Unambiguous()
	if err != nil {
		return nil, err
	}
	if !unamb {
		return nil, fmt.Errorf("extract: internal: segment-wise maximization broke tuple unambiguity")
	}
	return out, nil
}

func startBitset(n *machine.NFA) []bool {
	set := make([]bool, n.NumStates())
	for _, s := range n.Start {
		set[s] = true
	}
	epsClose(n, set)
	return set
}

func moveBitset(n *machine.NFA, set []bool, sym symtab.Symbol) []bool {
	out := make([]bool, n.NumStates())
	for s, in := range set {
		if !in {
			continue
		}
		for _, e := range n.Edges[s] {
			if e.On.Contains(sym) {
				out[e.To] = true
			}
		}
	}
	epsClose(n, out)
	return out
}

func epsClose(n *machine.NFA, set []bool) {
	var stack []int
	for s, in := range set {
		if in {
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range n.Eps[s] {
			if !set[e] {
				set[e] = true
				stack = append(stack, e)
			}
		}
	}
}

// reverseEpsClose extends set backwards along ε-edges: if t ∈ set and
// s -ε→ t then s ∈ set.
func reverseEpsClose(n *machine.NFA, set []bool) {
	for changed := true; changed; {
		changed = false
		for s := 0; s < n.NumStates(); s++ {
			if set[s] {
				continue
			}
			for _, e := range n.Eps[s] {
				if set[e] {
					set[s] = true
					changed = true
					break
				}
			}
		}
	}
}
