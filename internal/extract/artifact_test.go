package extract

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"resilex/internal/codec"
	"resilex/internal/machine"
	"resilex/internal/symtab"
)

// htmlSigmaNames is the Figure 1 tag alphabet as persisted-wrapper sigma
// names — the same set newHTMLEnv interns.
var htmlSigmaNames = []string{
	"P", "H1", "/H1", "FORM", "/FORM", "INPUT", "BR",
	"TABLE", "/TABLE", "TR", "/TR", "TD", "/TD", "TH", "/TH", "IMG", "A", "/A",
}

// artifactFixtures is every fixture expression in the repo's extraction test
// suite — the token-level E1–E12 fixtures plus the HTML-level Figure 1
// fixtures — as (source, sigma names) pairs for the artifact codec.
func artifactFixtures() []struct {
	src   string
	names []string
} {
	var out []struct {
		src   string
		names []string
	}
	for _, f := range tokenFixtures {
		names := []string{"p", "q"}
		if f.sigma == 3 {
			names = []string{"p", "q", "r"}
		}
		out = append(out, struct {
			src   string
			names []string
		}{f.src, names})
	}
	for _, src := range htmlFixtures {
		out = append(out, struct {
			src   string
			names []string
		}{src, htmlSigmaNames})
	}
	return out
}

// artifactWords builds the document sweep for one artifact: every word up to
// a length bound when the alphabet is small, plus seeded random words —
// including ones with an out-of-Σ symbol — for larger alphabets.
func artifactWords(tab *symtab.Table, sigma symtab.Alphabet, seed int64) [][]symtab.Symbol {
	syms := sigma.Symbols()
	var out [][]symtab.Symbol
	if len(syms) <= 3 {
		out = allWords(sigma, 5)
	}
	rng := rand.New(rand.NewSource(seed))
	oov := tab.Intern("artifact-test-out-of-sigma")
	for i := 0; i < 60; i++ {
		w := make([]symtab.Symbol, rng.Intn(40))
		for j := range w {
			w[j] = syms[rng.Intn(len(syms))]
		}
		out = append(out, w)
		if len(w) > 0 && i%5 == 0 {
			mut := append([]symtab.Symbol(nil), w...)
			mut[rng.Intn(len(mut))] = oov
			out = append(out, mut)
		}
	}
	return out
}

// TestArtifactRoundTripFixtures is the round-trip property: for every
// fixture expression, encode→decode→extract agrees token-for-token with the
// freshly compiled matcher, on both the eager and the lazy path.
func TestArtifactRoundTripFixtures(t *testing.T) {
	for _, f := range artifactFixtures() {
		f := f
		t.Run(f.src, func(t *testing.T) {
			fresh, err := CompileArtifact(f.src, f.names, machine.Options{})
			if err != nil {
				t.Fatal(err)
			}
			blob, err := EncodeArtifact(fresh)
			if err != nil {
				t.Fatal(err)
			}
			got, err := DecodeArtifact(blob, machine.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !fresh.Tab.EqualNames(got.Tab) {
				t.Fatal("decoded table names differ")
			}
			if got.Expr.P() != fresh.Expr.P() || !got.Expr.Sigma().Equal(fresh.Expr.Sigma()) {
				t.Fatal("decoded marked symbol or Σ differ")
			}
			if !machine.StructurallyEqual(fresh.Expr.Left().DFA(), got.Expr.Left().DFA()) ||
				!machine.StructurallyEqual(fresh.Expr.Right().DFA(), got.Expr.Right().DFA()) {
				t.Fatal("decoded component DFAs differ structurally")
			}
			lazy, err := got.Expr.CompileLazy()
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range artifactWords(got.Tab, got.Expr.Sigma(), 7) {
				want := fresh.Matcher.All(w)
				eager := got.Matcher.All(w)
				viaLazy, err := lazy.All(w)
				if err != nil {
					t.Fatalf("decoded lazy All(%v): %v", w, err)
				}
				for _, pair := range [][2][]int{{want, eager}, {want, viaLazy}} {
					if len(pair[0]) != len(pair[1]) {
						t.Fatalf("on %v: decoded %v / %v, fresh %v", w, eager, viaLazy, want)
					}
					for i := range pair[0] {
						if pair[0][i] != pair[1][i] {
							t.Fatalf("on %v: decoded %v / %v, fresh %v", w, eager, viaLazy, want)
						}
					}
				}
			}
		})
	}
}

// TestArtifactEncodeDeterministic: re-encoding a decoded artifact reproduces
// the original blob byte for byte. Determinism is what makes the blobs
// shareable under a content address: every process that compiles one
// expression persists one identical artifact.
func TestArtifactEncodeDeterministic(t *testing.T) {
	for _, f := range artifactFixtures()[:6] {
		c, err := CompileArtifact(f.src, f.names, machine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		blob, err := EncodeArtifact(c)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeArtifact(blob, machine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		blob2, err := EncodeArtifact(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(blob, blob2) {
			t.Fatalf("%s: re-encoded blob differs", f.src)
		}
	}
}

func TestDecodeArtifactRejectsCorruption(t *testing.T) {
	c, err := CompileArtifact("q p <p> q*", []string{"p", "q"}, machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := EncodeArtifact(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeArtifact(nil, machine.Options{}); !errors.Is(err, codec.ErrMalformedInput) {
		t.Errorf("nil blob: err = %v", err)
	}
	if _, err := DecodeArtifact(blob[:len(blob)-3], machine.Options{}); !errors.Is(err, codec.ErrMalformedInput) {
		t.Errorf("truncated blob: err = %v", err)
	}
	// A stale format version is malformed — and distinguishable, so the disk
	// tier can count stale discards apart from bit rot.
	stale := append([]byte(nil), blob...)
	stale[4]++
	if _, err := DecodeArtifact(stale, machine.Options{}); !errors.Is(err, codec.ErrVersionMismatch) {
		t.Errorf("stale version: err = %v, want ErrVersionMismatch", err)
	}
	for i := range blob {
		mut := append([]byte(nil), blob...)
		mut[i] ^= 0x20
		if _, err := DecodeArtifact(mut, machine.Options{}); !errors.Is(err, codec.ErrMalformedInput) {
			t.Fatalf("bit flip at %d: err = %v, want ErrMalformedInput", i, err)
		}
	}
}

// TestEncodeArtifactRequiresSource: only CompileArtifact-built values — the
// ones that kept their persisted source — can be persisted.
func TestEncodeArtifactRequiresSource(t *testing.T) {
	e := newTenv()
	x := e.expr(t, "q* <p> .*", e.sigma2)
	if _, err := EncodeArtifact(&Compiled{Tab: e.tab, Expr: x}); err == nil {
		t.Fatal("artifact without source encoded")
	}
	if _, err := EncodeArtifact(nil); err == nil {
		t.Fatal("nil artifact encoded")
	}
}

// FuzzDecodeArtifact asserts the decode contract on arbitrary bytes: never a
// panic, and any blob that decodes successfully is equivalence-checked
// against a fresh compilation of its own embedded source.
func FuzzDecodeArtifact(f *testing.F) {
	for _, fix := range []struct {
		src   string
		names []string
	}{
		{"q* <p> .*", []string{"p", "q"}},
		{"(p | p p) <p> (p | p p)", []string{"p", "q"}},
		{"q* r <p> r q*", []string{"p", "q", "r"}},
		{"FORM INPUT <INPUT> .*", htmlSigmaNames},
	} {
		c, err := CompileArtifact(fix.src, fix.names, machine.Options{})
		if err != nil {
			f.Fatal(err)
		}
		blob, err := EncodeArtifact(c)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
		f.Add(blob[:len(blob)/2])
		mut := append([]byte(nil), blob...)
		mut[len(mut)/3] ^= 0xff
		f.Add(mut)
	}
	// k-ary frames share the RXAR v2 framing; seed one plus damaged variants
	// so both decode entry points chew on tuple payloads.
	for _, fix := range []struct {
		src   string
		names []string
	}{
		{"q* <p> q* <r> .*", []string{"p", "q", "r"}},
		{".* <p> .* <p> .*", []string{"p", "q"}},
	} {
		ct, err := CompileTupleArtifact(fix.src, fix.names, machine.Options{})
		if err != nil {
			f.Fatal(err)
		}
		blob, err := EncodeTupleArtifact(ct)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
		f.Add(blob[:len(blob)/2])
		mut := append([]byte(nil), blob...)
		mut[len(mut)/3] ^= 0xff
		f.Add(mut)
	}
	f.Add([]byte("RXAR"))
	f.Add([]byte{})
	opt := machine.Options{MaxStates: 1 << 12}
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeArtifact(data, opt)
		if err == nil {
			fresh, err := CompileArtifact(got.Src, got.SigmaNames, opt)
			if errors.Is(err, machine.ErrBudget) || errors.Is(err, machine.ErrDeadline) {
				return // cannot re-derive the reference machine under the fuzz budget
			}
			if err != nil {
				t.Fatalf("decoded artifact's source does not compile: %v", err)
			}
			if got.Expr.P() != fresh.Expr.P() ||
				!machine.StructurallyEqual(fresh.Expr.Left().DFA(), got.Expr.Left().DFA()) ||
				!machine.StructurallyEqual(fresh.Expr.Right().DFA(), got.Expr.Right().DFA()) {
				t.Fatal("decoded artifact not equivalent to fresh compilation")
			}
		} else if got != nil {
			t.Fatal("decode returned both artifact and error")
		}

		tgot, terr := DecodeTupleArtifact(data, opt)
		if terr != nil {
			if tgot != nil {
				t.Fatal("tuple decode returned both artifact and error")
			}
			return
		}
		tfresh, err := CompileTupleArtifact(tgot.Src, tgot.SigmaNames, opt)
		if errors.Is(err, machine.ErrBudget) || errors.Is(err, machine.ErrDeadline) {
			return
		}
		if err != nil {
			t.Fatalf("decoded tuple artifact's source does not compile: %v", err)
		}
		if tgot.Tuple.Arity() != tfresh.Tuple.Arity() {
			t.Fatal("decoded tuple artifact arity disagrees with fresh compilation")
		}
		for j := 0; j <= tgot.Tuple.Arity(); j++ {
			if !machine.StructurallyEqual(tfresh.Tuple.Segment(j).DFA(), tgot.Tuple.Segment(j).DFA()) {
				t.Fatalf("decoded tuple segment %d not equivalent to fresh compilation", j)
			}
		}
	})
}
