package extract

import (
	"fmt"

	"resilex/internal/lang"
	"resilex/internal/symtab"
)

// Disambiguate shrinks an ambiguous expression into an unambiguous one that
// still extracts correctly from every word in keep — a concrete realization
// of the "disambiguation procedure … along with a number of counterexamples"
// the paper leaves as future work (Section 8).
//
// Each round eliminates the shortest ambiguity gap γ (Lemma 5.3) by
// removing, from one component, exactly the words that realize it:
//
//	right repair: E2 := E2 − G·p·Σ*   (kills every γ ∈ G in E2/(p·E2))
//	left  repair: E1 := E1 − Σ*·p·G   (kills every γ ∈ G in (E1·p)\E1)
//
// The repair that keeps every word of keep extractable at its original
// position is chosen (right first). Rounds are bounded by maxRounds since
// some expressions have infinitely many independent gaps; exhaustion, or a
// gap neither repair can remove without breaking keep, returns
// ErrNotApplicable.
func Disambiguate(e Expr, keep [][]symtab.Symbol, maxRounds int) (Expr, error) {
	// Record the required extraction positions up front.
	type anchor struct {
		word []symtab.Symbol
		pos  int
	}
	var anchors []anchor
	for _, w := range keep {
		pos, ok := e.Extract(w)
		if !ok {
			return Expr{}, fmt.Errorf("extract: keep word %v is not parsed by the input expression", w)
		}
		anchors = append(anchors, anchor{w, pos})
	}
	preserved := func(x Expr) bool {
		for _, a := range anchors {
			if pos, ok := x.Extract(a.word); !ok || pos != a.pos {
				return false
			}
		}
		return true
	}
	for round := 0; round < maxRounds; round++ {
		unamb, err := e.Unambiguous()
		if err != nil {
			return Expr{}, err
		}
		if unamb {
			return e, nil
		}
		gL, gR, err := e.gapLanguages()
		if err != nil {
			return Expr{}, err
		}
		gaps, err := gL.Intersect(gR)
		if err != nil {
			return Expr{}, err
		}
		gamma, ok := gaps.Witness()
		if !ok {
			return Expr{}, fmt.Errorf("extract: internal: ambiguous but no gap witness")
		}
		// Candidate repairs, most aggressive first: remove the entire gap
		// language from one side (terminates in one round when it sticks),
		// else just the shortest gap word.
		single, err := lang.Single(gamma, e.sigma, e.opt)
		if err != nil {
			return Expr{}, err
		}
		repaired := false
		for _, cand := range []struct {
			g    lang.Language
			side string
		}{
			{gaps, "right"}, {gaps, "left"}, {single, "right"}, {single, "left"},
		} {
			x, err := e.repairGap(cand.g, cand.side)
			if err != nil {
				return Expr{}, err
			}
			if preserved(x) {
				e = x
				repaired = true
				break
			}
		}
		if !repaired {
			return Expr{}, fmt.Errorf("%w: gap %v cannot be removed without breaking a keep word", ErrNotApplicable, gamma)
		}
	}
	return Expr{}, fmt.Errorf("%w: still ambiguous after %d repair rounds", ErrNotApplicable, maxRounds)
}

// repairGap removes the words realizing the gap set G from one component.
func (e Expr) repairGap(gammaL lang.Language, side string) (Expr, error) {
	pOnly, err := lang.Single([]symtab.Symbol{e.p}, e.sigma, e.opt)
	if err != nil {
		return Expr{}, err
	}
	univ := lang.Universal(e.sigma, e.opt)
	if side == "right" {
		// E2 − G·p·Σ*
		bad, err := gammaL.Concat(pOnly)
		if err != nil {
			return Expr{}, err
		}
		bad, err = bad.Concat(univ)
		if err != nil {
			return Expr{}, err
		}
		r, err := e.right.Minus(bad)
		if err != nil {
			return Expr{}, err
		}
		out := New(e.left, e.p, r)
		out.opt = e.opt
		return out, nil
	}
	// E1 − Σ*·p·G
	bad, err := univ.Concat(pOnly)
	if err != nil {
		return Expr{}, err
	}
	bad, err = bad.Concat(gammaL)
	if err != nil {
		return Expr{}, err
	}
	l, err := e.left.Minus(bad)
	if err != nil {
		return Expr{}, err
	}
	out := New(l, e.p, e.right)
	out.opt = e.opt
	return out, nil
}
