package extract

import (
	"errors"
	"fmt"

	"resilex/internal/lang"
	"resilex/internal/machine"
	"resilex/internal/obs"
	"resilex/internal/rx"
	"resilex/internal/symtab"
)

// Compose implements Proposition 6.7: given maximal unambiguous a = E1⟨q⟩Σ*
// and b = E2⟨p⟩Σ*, the expression (E1·q·E2)⟨p⟩Σ* is maximal and unambiguous.
// The same construction on merely-unambiguous inputs preserves unambiguity
// (Proposition 6.6); Compose does not itself verify its inputs.
func Compose(a, b Expr) (Expr, error) {
	qOnly, err := lang.Single([]symtab.Symbol{a.p}, a.sigma.Union(b.sigma), a.opt)
	if err != nil {
		return Expr{}, err
	}
	left, err := a.left.Concat(qOnly)
	if err != nil {
		return Expr{}, err
	}
	left, err = left.Concat(b.left)
	if err != nil {
		return Expr{}, err
	}
	out := New(left, b.p, b.right)
	out.opt = a.opt
	return out, nil
}

// Decomposition is a pivot factoring of a prefix expression E into
// E₁·q₁·E₂·q₂·…·Eₙ·qₙ·E_{n+1} (Section 6, Expression (4)): Segments has
// n+1 entries and Pivots has n.
type Decomposition struct {
	Segments []*rx.Node
	Pivots   []symtab.Symbol
}

// String renders the decomposition for diagnostics.
func (d Decomposition) String(tab *symtab.Table) string {
	out := ""
	for i, seg := range d.Segments {
		if i > 0 {
			out += " ⟨" + tab.Name(d.Pivots[i-1]) + "⟩ "
		}
		out += "(" + rx.Print(seg, tab) + ")"
	}
	return out
}

// Pivot runs the pivot maximization framework (Proposition 6.8) on an
// expression E⟨p⟩E2 built from syntax: it discovers a pivot decomposition of
// the left AST, left-filter-maximizes every segment against its following
// pivot (the last segment against p), and composes the results with
// Proposition 6.7 into a maximal unambiguous expression.
//
// Pivot is strictly more powerful than plain left-filtering: E itself may
// match unboundedly many p's as long as the final segment does not.
//
// The expression must satisfy the widening precondition (E·p)\E = ∅ (or
// already have E2 = Σ*). Expressions without syntax (LeftAST() == nil)
// cannot be decomposed and fail with ErrNotApplicable.
func Pivot(e Expr) (Expr, error) {
	dec, result, err := pivotWithDecomposition(e)
	_ = dec
	return result, err
}

// PivotDecomposition returns the decomposition Pivot would use, for
// inspection and for the experiment tables.
func PivotDecomposition(e Expr) (Decomposition, error) {
	dec, _, err := pivotWithDecomposition(e)
	return dec, err
}

func pivotWithDecomposition(e Expr) (_ Decomposition, _ Expr, err error) {
	var segments, pivots int64
	ctx, ph := obs.StartPhase(e.opt.Ctx, "extract.pivot")
	if ph != nil {
		e.opt.Ctx = ctx
	}
	defer func() {
		ph.Attr("segments", segments)
		ph.Attr("pivots", pivots)
		ph.Count("extract_pivot_segments_total", segments)
		ph.End()
	}()
	if unamb, err := e.Unambiguous(); err != nil {
		return Decomposition{}, Expr{}, err
	} else if !unamb {
		return Decomposition{}, Expr{}, ErrAmbiguous
	}
	if e.leftAST == nil {
		return Decomposition{}, Expr{}, fmt.Errorf("%w: expression has no syntactic form to decompose", ErrNotApplicable)
	}
	// Widening precondition, as in LeftFilter.
	pOnly, err := lang.Single([]symtab.Symbol{e.p}, e.sigma, e.opt)
	if err != nil {
		return Decomposition{}, Expr{}, err
	}
	ep, err := e.left.Concat(pOnly)
	if err != nil {
		return Decomposition{}, Expr{}, err
	}
	gap, err := e.left.LeftFactor(ep)
	if err != nil {
		return Decomposition{}, Expr{}, err
	}
	if !gap.IsEmpty() {
		return Decomposition{}, Expr{}, fmt.Errorf("%w: (E·p)\\E ≠ ∅, widening the right side to Σ* would be ambiguous", ErrNotApplicable)
	}
	dec, err := discoverPivots(e.leftAST, e.p, e.sigma, e.opt)
	if err != nil {
		return Decomposition{}, Expr{}, err
	}
	segments, pivots = int64(len(dec.Segments)), int64(len(dec.Pivots))
	// Maximize each segment against its following pivot with Algorithm 6.2,
	// then fold with Proposition 6.7. The fold is left-to-right: acc after
	// step i is (E'₁·q₁·…·E'ᵢ₊₁)⟨qᵢ₊₁-or-p⟩Σ*, maximal by induction.
	var acc Expr
	for i, seg := range dec.Segments {
		next := e.p
		if i < len(dec.Pivots) {
			next = dec.Pivots[i]
		}
		segExpr, err := FromAST(seg, next, rx.Star(rx.Class(e.sigma)), e.sigma, e.opt)
		if err != nil {
			return dec, Expr{}, err
		}
		segMax, err := LeftFilter(segExpr)
		if err != nil {
			return dec, Expr{}, fmt.Errorf("extract: pivot segment %d: %w", i, err)
		}
		if i == 0 {
			acc = segMax
			continue
		}
		// acc currently marks dec.Pivots[i-1]; compose with the new segment.
		acc, err = Compose(acc, segMax)
		if err != nil {
			return dec, Expr{}, err
		}
	}
	return dec, acc, nil
}

// discoverPivots flattens the top-level concatenation of the AST and
// greedily selects literal factors as pivots, dropping any candidate whose
// Proposition 6.8 side conditions fail (segment unambiguous w.r.t. the
// pivot, segment bounded in the pivot symbol) by merging it into the
// following segment. It errs with ErrUnbounded/ErrNotApplicable only when
// even the no-pivot decomposition (plain left-filtering) is inapplicable.
func discoverPivots(ast *rx.Node, p symtab.Symbol, sigma symtab.Alphabet, opt machine.Options) (Decomposition, error) {
	var factors []*rx.Node
	if ast.Op == rx.OpConcat {
		factors = ast.Subs
	} else {
		factors = []*rx.Node{ast}
	}
	// Candidate pivot positions: singleton-class factors.
	isPivot := make([]bool, len(factors))
	for i, f := range factors {
		if f.Op == rx.OpClass && f.Class.Len() == 1 {
			isPivot[i] = true
		}
	}
	for {
		dec := assemble(factors, isPivot)
		bad, err := firstViolation(dec, p, sigma, opt)
		if err != nil {
			return Decomposition{}, err
		}
		if bad < 0 {
			return dec, nil
		}
		if bad == len(dec.Pivots) {
			// The final ⟨p⟩ segment fails: drop the last remaining pivot to
			// enlarge it; with no pivots left, the expression is beyond this
			// strategy.
			if !dropLastPivot(factors, isPivot) {
				return Decomposition{}, ErrUnbounded
			}
			continue
		}
		// Segment `bad` fails against pivot `bad`: demote that pivot.
		demotePivot(factors, isPivot, bad)
	}
}

// assemble splits factors into a Decomposition given the pivot mask.
func assemble(factors []*rx.Node, isPivot []bool) Decomposition {
	var dec Decomposition
	var cur []*rx.Node
	for i, f := range factors {
		if isPivot[i] {
			dec.Segments = append(dec.Segments, rx.Concat(cur...))
			dec.Pivots = append(dec.Pivots, f.Class.Symbols()[0])
			cur = nil
			continue
		}
		cur = append(cur, f)
	}
	dec.Segments = append(dec.Segments, rx.Concat(cur...))
	return dec
}

// firstViolation returns the index of the first segment whose side
// conditions fail (index == len(Pivots) refers to the final ⟨p⟩ segment),
// or -1 when the decomposition is valid.
func firstViolation(dec Decomposition, p symtab.Symbol, sigma symtab.Alphabet, opt machine.Options) (int, error) {
	for i, seg := range dec.Segments {
		mark := p
		if i < len(dec.Pivots) {
			mark = dec.Pivots[i]
		}
		segLang, err := lang.FromRegex(seg, sigma, opt)
		if err != nil {
			return 0, err
		}
		if _, bounded := segLang.MaxOccurrences(mark); !bounded {
			return i, nil
		}
		segExpr, err := FromAST(seg, mark, rx.Star(rx.Class(sigma)), sigma, opt)
		if err != nil {
			return 0, err
		}
		if unamb, err := segExpr.Unambiguous(); err != nil {
			return 0, err
		} else if !unamb {
			return i, nil
		}
	}
	return -1, nil
}

// demotePivot clears the pivot at ordinal `ord` (0-based among pivots).
func demotePivot(factors []*rx.Node, isPivot []bool, ord int) {
	seen := 0
	for i := range factors {
		if isPivot[i] {
			if seen == ord {
				isPivot[i] = false
				return
			}
			seen++
		}
	}
}

// dropLastPivot clears the last pivot; returns false when none remain.
func dropLastPivot(factors []*rx.Node, isPivot []bool) bool {
	for i := len(factors) - 1; i >= 0; i-- {
		if isPivot[i] {
			isPivot[i] = false
			return true
		}
	}
	return false
}

// PivotRight is the mirror image of the pivot framework: it decomposes the
// *suffix* component at literal anchors and maximizes toward Σ*⟨p⟩E2'. The
// construction runs Pivot on the syntactically reversed expression
// (rx.ReverseNode) and reverses the result — every definition in the paper
// is mirror-symmetric. Requires the expression to carry syntax for the
// right component.
func PivotRight(e Expr) (Expr, error) {
	if e.rightAST == nil {
		return Expr{}, fmt.Errorf("%w: expression has no syntactic right component to decompose", ErrNotApplicable)
	}
	leftRev := e.leftAST
	if leftRev != nil {
		leftRev = rx.ReverseNode(leftRev)
	} else {
		leftRev = rx.Star(rx.Class(e.sigma)) // only used when E1 already Σ*
		if !e.left.IsUniversal() {
			// Reconstruct syntax from the canonical DFA.
			leftRev = rx.ReverseNode(e.left.Regex())
		}
	}
	mirror, err := FromAST(rx.ReverseNode(e.rightAST), e.p, leftRev, e.sigma, e.opt)
	if err != nil {
		return Expr{}, err
	}
	out, err := Pivot(mirror)
	if err != nil {
		return Expr{}, err
	}
	return out.reverse()
}

// Maximize synthesizes a maximal unambiguous generalization of e using the
// paper's toolkit, in order of preference: pivot maximization (subsumes
// plain left-filtering, Section 6), its mirror image on the suffix side,
// then the plain filters. It returns ErrAmbiguous for ambiguous inputs and
// ErrNotApplicable when no strategy's side conditions hold — the open
// problem of Section 8 is whether such inputs are always maximizable at all.
func Maximize(e Expr) (_ Expr, err error) {
	o := obs.FromContext(e.opt.Ctx)
	ctx, ph := obs.StartPhase(e.opt.Ctx, "extract.maximize")
	if ph != nil {
		e.opt.Ctx = ctx
	}
	defer ph.End()
	if unamb, err := e.Unambiguous(); err != nil {
		return Expr{}, err
	} else if !unamb {
		return Expr{}, ErrAmbiguous
	}
	var firstErr error
	try := func(name string, f func(Expr) (Expr, error)) (Expr, bool) {
		out, err := f(e)
		if err == nil {
			o.Counter(obs.WithLabels("extract_maximize_success_total", "strategy", name)).Inc()
			return out, true
		}
		if firstErr == nil {
			firstErr = err
		}
		return Expr{}, false
	}
	if e.leftAST != nil {
		if out, ok := try("pivot", Pivot); ok {
			return out, nil
		}
	}
	if out, ok := try("left_filter", LeftFilter); ok {
		return out, nil
	}
	if e.rightAST != nil {
		if out, ok := try("pivot_right", PivotRight); ok {
			return out, nil
		}
	}
	if out, ok := try("right_filter", RightFilter); ok {
		return out, nil
	}
	if errors.Is(firstErr, ErrNotApplicable) || errors.Is(firstErr, ErrUnbounded) {
		return Expr{}, fmt.Errorf("%w (first failure: %v)", ErrNotApplicable, firstErr)
	}
	return Expr{}, firstErr
}
