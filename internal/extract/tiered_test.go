package extract

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"resilex/internal/machine"
)

// TestTieredLoadFlow walks one key through every tier transition: cold
// compile (miss in memory and on disk), memory hit, and — after a simulated
// restart that keeps the directory but not the process memory — a disk hit
// that skips compilation.
func TestTieredLoadFlow(t *testing.T) {
	dir := t.TempDir()
	disk, err := NewDiskCache(dir, -1, nil)
	if err != nil {
		t.Fatal(err)
	}
	tc := NewTieredCache(NewCache(8, nil), disk)
	src, names := "q* r <p> r q*", []string{"p", "q", "r"}

	c1, err := tc.Load(src, names, machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ms, ds := tc.Stats(), disk.Stats(); ms.Misses != 1 || ms.Hits != 0 || ds.Misses != 1 || ds.Entries != 1 {
		t.Fatalf("after cold load: mem %+v disk %+v", ms, ds)
	}

	c2, err := tc.Load(src, names, machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c2 != c1 {
		t.Fatal("memory hit returned a different artifact pointer")
	}
	if ms, ds := tc.Stats(), disk.Stats(); ms.Hits != 1 || ds.Hits != 0 {
		t.Fatalf("after warm load: mem %+v disk %+v", ms, ds)
	}

	// Restart: same directory, fresh memory tier and fresh disk handle.
	disk2, err := NewDiskCache(dir, -1, nil)
	if err != nil {
		t.Fatal(err)
	}
	tc2 := NewTieredCache(NewCache(8, nil), disk2)
	c3, err := tc2.Load(src, names, machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ds := disk2.Stats(); ds.Hits != 1 || ds.Misses != 0 {
		t.Fatalf("after restart load: disk %+v", ds)
	}
	for _, w := range allWords(c3.Expr.Sigma(), 4) {
		got, want := c3.Matcher.All(w), c1.Matcher.All(w)
		if len(got) != len(want) {
			t.Fatalf("restart artifact disagrees on %v: %v vs %v", w, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("restart artifact disagrees on %v: %v vs %v", w, got, want)
			}
		}
	}
}

// TestTieredSingleflight: N concurrent cold Loads of one key collapse to a
// single compilation and a single disk probe — the memory tier's
// singleflight still guards the composed stack.
func TestTieredSingleflight(t *testing.T) {
	disk, err := NewDiskCache(t.TempDir(), -1, nil)
	if err != nil {
		t.Fatal(err)
	}
	tc := NewTieredCache(NewCache(8, nil), disk)
	const n = 16
	var wg sync.WaitGroup
	results := make([]*Compiled, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := tc.Load("(p | p p) <p> (p | p p)", []string{"p", "q"}, machine.Options{})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = c
		}(i)
	}
	wg.Wait()
	for _, c := range results[1:] {
		if c != results[0] {
			t.Fatal("concurrent loads produced distinct artifacts")
		}
	}
	ms, ds := tc.Stats(), disk.Stats()
	if ms.Misses != 1 || ms.Hits != n-1 {
		t.Fatalf("mem stats %+v, want 1 miss / %d hits", ms, n-1)
	}
	if ds.Misses != 1 || ds.Entries != 1 {
		t.Fatalf("disk stats %+v, want exactly one probe and one entry", ds)
	}
}

// TestTieredEvictionRacesSingleflight hammers a capacity-1 disk tier (and a
// small memory tier) with concurrent loads over more keys than either tier
// holds, so evictions run while other goroutines are inside the
// compile/decode path for the evicted keys. Run under -race this is the
// differential check that directory mutation and singleflight compose; every
// load must still return a correct artifact.
func TestTieredEvictionRacesSingleflight(t *testing.T) {
	disk, err := NewDiskCache(t.TempDir(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	tc := NewTieredCache(NewCache(2, nil), disk)
	srcs := make([]string, 6)
	for i := range srcs {
		srcs[i] = fmt.Sprintf("q p%s <p> q*", strings.Repeat(" p", i))
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				src := srcs[(g+i)%len(srcs)]
				c, err := tc.Load(src, []string{"p", "q"}, machine.Options{})
				if err != nil {
					t.Errorf("load %q: %v", src, err)
					return
				}
				if c.Src != src {
					t.Errorf("load %q returned artifact for %q", src, c.Src)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if n := disk.Len(); n > 1 {
		t.Fatalf("capacity-1 disk tier holds %d entries", n)
	}
}
