package extract

import (
	"errors"
	"testing"

	"resilex/internal/machine"
	"resilex/internal/symtab"
)

func (e tenv) tuple(t *testing.T, src string, sigma symtab.Alphabet) *Tuple {
	t.Helper()
	tp, err := ParseTuple(src, e.tab, sigma, machine.Options{})
	if err != nil {
		t.Fatalf("ParseTuple(%q): %v", src, err)
	}
	return tp
}

// oracleVectors enumerates all valid extraction vectors by brute force.
func oracleVectors(tp *Tuple, w []symtab.Symbol) [][]int {
	k := tp.Arity()
	var out [][]int
	var rec func(j, from int, acc []int)
	rec = func(j, from int, acc []int) {
		if j == k {
			if tp.Segment(k).Contains(w[from:]) {
				out = append(out, append([]int(nil), acc...))
			}
			return
		}
		for i := from; i < len(w); i++ {
			if w[i] != tp.Marks()[j] {
				continue
			}
			if tp.Segment(j).Contains(w[from:i]) {
				rec(j+1, i+1, append(acc, i))
			}
		}
	}
	rec(0, 0, nil)
	return out
}

func TestTupleParseAndAccessors(t *testing.T) {
	e := newTenv()
	tp := e.tuple(t, "q* <p> q* <r> .*", e.sigma3)
	if tp.Arity() != 2 {
		t.Fatalf("arity = %d", tp.Arity())
	}
	if m := tp.Marks(); m[0] != e.p || m[1] != e.r {
		t.Fatalf("marks = %v", m)
	}
	if !tp.Segment(0).Contains(nil) || tp.Segment(0).Contains([]symtab.Symbol{e.p}) {
		t.Error("segment 0 wrong")
	}
	if !tp.Sigma().Equal(e.sigma3) {
		t.Errorf("sigma = %v", tp.Sigma().Symbols())
	}
	s := tp.String(e.tab)
	if s != "q* <p> q* <r> .*" {
		t.Errorf("String = %q", s)
	}
}

func TestTupleErrors(t *testing.T) {
	e := newTenv()
	if _, err := ParseTuple("p q", e.tab, e.sigma2, machine.Options{}); err == nil {
		t.Error("tuple without marks accepted")
	}
	if _, err := ParseTuple("(q <p>) r", e.tab, e.sigma3, machine.Options{}); err == nil {
		t.Error("nested mark accepted")
	}
	if _, err := NewTuple(nil, nil); err == nil {
		t.Error("empty NewTuple accepted")
	}
}

func TestTuplePositionsAgainstOracle(t *testing.T) {
	e := newTenv()
	tuples := []string{
		"q* <p> q* <r> .*",
		"<p> .* <r>",
		"q <p> [^ p]* <p> q*",
		"(q | q q) <p> <r> .*",
		".* <p> .* <r> .*",
	}
	words := allWords(e.sigma3, 5)
	for _, src := range tuples {
		tp := e.tuple(t, src, e.sigma3)
		for _, w := range words {
			vectors := oracleVectors(tp, w)
			// Per-mark positions from the oracle.
			want := make(map[int]map[int]bool)
			for _, v := range vectors {
				for j, i := range v {
					if want[j] == nil {
						want[j] = map[int]bool{}
					}
					want[j][i] = true
				}
			}
			got, err := tp.Positions(w)
			if err != nil {
				t.Fatal(err)
			}
			for j := range got {
				if len(got[j]) != len(want[j]) {
					t.Fatalf("%q on %q: mark %d positions %v, oracle %v",
						src, e.tab.String(w), j, got[j], want[j])
				}
				for _, i := range got[j] {
					if !want[j][i] {
						t.Fatalf("%q on %q: spurious position %d for mark %d",
							src, e.tab.String(w), i, j)
					}
				}
			}
			if tp.Parses(w) != (len(vectors) > 0) {
				t.Fatalf("%q on %q: Parses disagrees with oracle", src, e.tab.String(w))
			}
		}
	}
}

func TestTupleUnambiguousAgainstOracle(t *testing.T) {
	e := newTenv()
	cases := []struct {
		src       string
		ambiguous bool
	}{
		{"q* <p> q* <r> .*", false},
		// Marks pinned at both ends: seg0 = ε forces p to position 0 and
		// seg2 = ε forces r to the last position.
		{"<p> .* <r>", false},
		{".* <p> .* <r> .*", true},
		// The [^ p]* bridge plus the q* tail pin both p's.
		{"q <p> [^ p]* <p> q*", false},
		{"(q | q q) <p> <r> .*", false},
		{"[^ p]* <p> [^ r]* <r> .*", false},
		// Genuinely ambiguous: on p·q·r·p·q·r both (0,2) and (3,5) work.
		{".* <p> q* <r> .*", true},
		// Single-mark degenerate case agrees with the Expr theory.
		{"p? <p> p*", true},
		{"q? <p> p*", false},
	}
	words := allWords(e.sigma3, 6)
	for _, c := range cases {
		tp := e.tuple(t, c.src, e.sigma3)
		got, err := tp.Unambiguous()
		if err != nil {
			t.Fatal(err)
		}
		// Oracle over short words.
		oracleAmbiguous := false
		for _, w := range words {
			if len(oracleVectors(tp, w)) >= 2 {
				oracleAmbiguous = true
				break
			}
		}
		if oracleAmbiguous && got {
			t.Errorf("%q: oracle found two vectors but Unambiguous = true", c.src)
		}
		if got == c.ambiguous {
			t.Errorf("Unambiguous(%q) = %v, want %v", c.src, got, !c.ambiguous)
		}
	}
}

func TestTupleExtract(t *testing.T) {
	e := newTenv()
	tp := e.tuple(t, "[^ p]* <p> [^ r]* <r> .*", e.sigma3)
	w := e.word(t, "q q p q r r")
	v, ok, err := tp.Extract(w)
	if err != nil || !ok {
		t.Fatalf("Extract: %v %v", ok, err)
	}
	if len(v) != 2 || v[0] != 2 || v[1] != 4 {
		t.Errorf("vector = %v, want [2 4]", v)
	}
	// Non-parsing word.
	if _, ok, err := tp.Extract(e.word(t, "q q")); ok || err != nil {
		t.Errorf("non-parse: %v %v", ok, err)
	}
	// Ambiguous tuple exposes itself on extraction.
	amb := e.tuple(t, ".* <p> .* <r> .*", e.sigma3)
	if _, _, err := amb.Extract(e.word(t, "p p r r")); err == nil {
		t.Error("ambiguous extraction did not error")
	}
}

func TestMaximizeTuple(t *testing.T) {
	e := newTenv()
	in := e.tuple(t, "q <p> q q <r> q*", e.sigma3)
	if unamb, err := in.Unambiguous(); err != nil || !unamb {
		t.Fatalf("input should be unambiguous: %v %v", unamb, err)
	}
	out, err := MaximizeTuple(in)
	if err != nil {
		t.Fatal(err)
	}
	unamb, err := out.Unambiguous()
	if err != nil || !unamb {
		t.Fatalf("output not unambiguous: %v %v", unamb, err)
	}
	// Segment-wise generalization.
	for j := 0; j <= in.Arity(); j++ {
		sub, err := in.Segment(j).SubsetOf(out.Segment(j))
		if err != nil || !sub {
			t.Errorf("segment %d did not generalize (%v, %v)", j, sub, err)
		}
	}
	// Extraction preserved on the training-shaped word and gained on a
	// perturbed one.
	w := e.word(t, "q p q q r q")
	vi, ok, err := in.Extract(w)
	if err != nil || !ok {
		t.Fatalf("input extract: %v %v", ok, err)
	}
	vo, ok, err := out.Extract(w)
	if err != nil || !ok {
		t.Fatalf("output extract: %v %v", ok, err)
	}
	for j := range vi {
		if vi[j] != vo[j] {
			t.Errorf("vector drifted: %v vs %v", vi, vo)
		}
	}
	novel := e.word(t, "q q q p q q q r q q")
	if _, ok, err := out.Extract(novel); err != nil || !ok {
		t.Errorf("maximized tuple failed on novel word: %v %v", ok, err)
	}
	if _, ok, _ := in.Extract(novel); ok {
		t.Error("input unexpectedly parsed the novel word — test is vacuous")
	}
	// Ambiguous input rejected.
	amb := e.tuple(t, ".* <p> .* <r> .*", e.sigma3)
	if _, err := MaximizeTuple(amb); !errors.Is(err, ErrAmbiguous) {
		t.Errorf("err = %v", err)
	}
}

// A realistic tuple: the search form's first and second INPUT as one unit.
func TestTupleHTMLScenario(t *testing.T) {
	h := newHTMLEnv()
	tp, err := ParseTuple("[^ FORM]* FORM [^ INPUT]* <INPUT> [^ INPUT]* <INPUT> .*",
		h.tab, h.sigma, machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	unamb, err := tp.Unambiguous()
	if err != nil || !unamb {
		t.Fatalf("tuple should be unambiguous: %v %v", unamb, err)
	}
	doc := h.doc(t, fig1Doc2)
	v, ok, err := tp.Extract(doc)
	if err != nil || !ok {
		t.Fatalf("extract: %v %v", ok, err)
	}
	if v[0] != 21 || v[1] != 22 {
		t.Errorf("vector = %v, want [21 22]", v)
	}
}
