package extract

import (
	"fmt"

	"resilex/internal/lang"
	"resilex/internal/symtab"
)

// gapLanguage computes the two "gap" languages of Lemma 5.3. A string γ is a
// gap witness iff some α·p·γ·p·β parses with both the first and second p as
// the marked occurrence:
//
//	gL = (E1·p)\E1 — the γ with α, α·p·γ ∈ L(E1) for some α
//	gR = E2/(p·E2) — the γ with β, γ·p·β ∈ L(E2) for some β
//
// The expression is ambiguous iff gL ∩ gR ≠ ∅ (Proposition 5.4).
func (e Expr) gapLanguages() (gL, gR lang.Language, err error) {
	pOnly, err := lang.Single([]symtab.Symbol{e.p}, e.sigma, e.opt)
	if err != nil {
		return gL, gR, err
	}
	e1p, err := e.left.Concat(pOnly)
	if err != nil {
		return gL, gR, err
	}
	gL, err = e.left.LeftFactor(e1p)
	if err != nil {
		return gL, gR, err
	}
	pe2, err := pOnly.Concat(e.right)
	if err != nil {
		return gL, gR, err
	}
	gR, err = e.right.RightFactor(pe2)
	return gL, gR, err
}

// Unambiguous decides Definition 4.2 via the factoring characterization of
// Proposition 5.4: E1⟨p⟩E2 is unambiguous iff (E1·p)\E1 ∩ E2/(p·E2) = ∅.
// The procedure is polynomial in the component automata (Theorem 5.6).
func (e Expr) Unambiguous() (bool, error) {
	gL, gR, err := e.gapLanguages()
	if err != nil {
		return false, err
	}
	g, err := gL.Intersect(gR)
	if err != nil {
		return false, err
	}
	return g.IsEmpty(), nil
}

// UnambiguousMarker decides unambiguity via the marker characterization of
// Proposition 5.5: with a fresh symbol c ∉ Σ, E1⟨p⟩E2 is unambiguous iff
//
//	(E1·c·E2) ∩ (E1·p·M(E2)) = ∅
//
// where M(E2) = { γ·c·β | γ·p·β ∈ L(E2) } is E2 with exactly one p replaced
// by the marker. The marker symbol must not belong to Σ.
//
// This is an independent decision procedure; the test suite requires it to
// agree with Unambiguous everywhere (experiment E9).
func (e Expr) UnambiguousMarker(marker symtab.Symbol) (bool, error) {
	if e.sigma.Contains(marker) {
		return false, fmt.Errorf("extract: marker symbol is in Σ")
	}
	wide := e.sigma.With(marker)
	cOnly, err := lang.Single([]symtab.Symbol{marker}, wide, e.opt)
	if err != nil {
		return false, err
	}
	pOnly, err := lang.Single([]symtab.Symbol{e.p}, wide, e.opt)
	if err != nil {
		return false, err
	}
	// E1·c·E2 over Σ∪{c}.
	a, err := e.left.Concat(cOnly)
	if err != nil {
		return false, err
	}
	a, err = a.Concat(e.right)
	if err != nil {
		return false, err
	}
	// E1·p·M(E2).
	m, err := e.right.ReplaceOne(e.p, marker)
	if err != nil {
		return false, err
	}
	b, err := e.left.Concat(pOnly)
	if err != nil {
		return false, err
	}
	b, err = b.Concat(m)
	if err != nil {
		return false, err
	}
	x, err := a.Intersect(b)
	if err != nil {
		return false, err
	}
	return x.IsEmpty(), nil
}

// AmbiguityWitness returns a shortest-by-construction string that the
// expression parses in at least two distinct ways, or ok=false when the
// expression is unambiguous. The witness is assembled from Lemma 5.3:
// a gap γ ∈ (E1·p)\E1 ∩ E2/(p·E2), an α with α, α·p·γ ∈ L(E1) and a β with
// β, γ·p·β ∈ L(E2); the returned word is α·p·γ·p·β.
func (e Expr) AmbiguityWitness() (word []symtab.Symbol, ok bool, err error) {
	gL, gR, err := e.gapLanguages()
	if err != nil {
		return nil, false, err
	}
	g, err := gL.Intersect(gR)
	if err != nil {
		return nil, false, err
	}
	gamma, found := g.Witness()
	if !found {
		return nil, false, nil
	}
	// α ∈ L(E1) with α·p·γ ∈ L(E1): α ∈ E1 ∩ E1/{p·γ}.
	pGamma, err := lang.Single(append([]symtab.Symbol{e.p}, gamma...), e.sigma, e.opt)
	if err != nil {
		return nil, false, err
	}
	alphaSet, err := e.left.RightFactor(pGamma)
	if err != nil {
		return nil, false, err
	}
	alphaSet, err = alphaSet.Intersect(e.left)
	if err != nil {
		return nil, false, err
	}
	alpha, found := alphaSet.Witness()
	if !found {
		return nil, false, fmt.Errorf("extract: internal: gap γ has no α (factoring inconsistency)")
	}
	// β ∈ L(E2) with γ·p·β ∈ L(E2): β ∈ E2 ∩ {γ·p}\E2.
	gammaP, err := lang.Single(append(append([]symtab.Symbol(nil), gamma...), e.p), e.sigma, e.opt)
	if err != nil {
		return nil, false, err
	}
	betaSet, err := e.right.LeftFactor(gammaP)
	if err != nil {
		return nil, false, err
	}
	betaSet, err = betaSet.Intersect(e.right)
	if err != nil {
		return nil, false, err
	}
	beta, found := betaSet.Witness()
	if !found {
		return nil, false, fmt.Errorf("extract: internal: gap γ has no β (factoring inconsistency)")
	}
	word = append(word, alpha...)
	word = append(word, e.p)
	word = append(word, gamma...)
	word = append(word, e.p)
	word = append(word, beta...)
	return word, true, nil
}
