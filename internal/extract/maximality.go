package extract

import (
	"resilex/internal/lang"
	"resilex/internal/symtab"
)

// Maximal decides Definition 4.5 via Corollary 5.8: an unambiguous
// E1⟨p⟩E2 is maximal iff
//
//	(E1·p·E2)/(p·E2) = Σ*   and   (E1·p)\(E1·p·E2) = Σ*
//
// The two universality checks make this PSPACE-complete in general
// (Theorem 5.12); on the expressions this library synthesizes the automata
// stay small, and adversarial inputs fail fast with a budget error.
//
// Calling Maximal on an ambiguous expression returns ErrAmbiguous:
// maximality is defined within the unambiguous order only.
func (e Expr) Maximal() (bool, error) {
	unamb, err := e.Unambiguous()
	if err != nil {
		return false, err
	}
	if !unamb {
		return false, ErrAmbiguous
	}
	pOnly, err := lang.Single([]symtab.Symbol{e.p}, e.sigma, e.opt)
	if err != nil {
		return false, err
	}
	// full = E1·p·E2
	e1p, err := e.left.Concat(pOnly)
	if err != nil {
		return false, err
	}
	full, err := e1p.Concat(e.right)
	if err != nil {
		return false, err
	}
	// Left side: (E1·p·E2)/(p·E2) must be Σ*.
	pe2, err := pOnly.Concat(e.right)
	if err != nil {
		return false, err
	}
	leftCover, err := full.RightFactor(pe2)
	if err != nil {
		return false, err
	}
	if !leftCover.IsUniversal() {
		return false, nil
	}
	// Right side: (E1·p)\(E1·p·E2) must be Σ*.
	rightCover, err := full.LeftFactor(e1p)
	if err != nil {
		return false, err
	}
	return rightCover.IsUniversal(), nil
}

// MaximalityDefect reports why an unambiguous expression is not maximal: a
// shortest string ρ missing from (E1·p·E2)/(p·E2) (then (ρ|E1)⟨p⟩E2 is a
// strict unambiguous generalization, per the proof of Proposition 5.7), or
// one missing from (E1·p)\(E1·p·E2) (then E1⟨p⟩(ρ|E2) is). side is "left"
// or "right"; ok=false when the expression is already maximal.
func (e Expr) MaximalityDefect() (rho []symtab.Symbol, side string, ok bool, err error) {
	unamb, err := e.Unambiguous()
	if err != nil {
		return nil, "", false, err
	}
	if !unamb {
		return nil, "", false, ErrAmbiguous
	}
	pOnly, err := lang.Single([]symtab.Symbol{e.p}, e.sigma, e.opt)
	if err != nil {
		return nil, "", false, err
	}
	e1p, err := e.left.Concat(pOnly)
	if err != nil {
		return nil, "", false, err
	}
	full, err := e1p.Concat(e.right)
	if err != nil {
		return nil, "", false, err
	}
	pe2, err := pOnly.Concat(e.right)
	if err != nil {
		return nil, "", false, err
	}
	leftCover, err := full.RightFactor(pe2)
	if err != nil {
		return nil, "", false, err
	}
	if w, found := leftCover.Complement().Witness(); found {
		return w, "left", true, nil
	}
	rightCover, err := full.LeftFactor(e1p)
	if err != nil {
		return nil, "", false, err
	}
	if w, found := rightCover.Complement().Witness(); found {
		return w, "right", true, nil
	}
	return nil, "", false, nil
}

// Extend returns the expression with ρ adjoined to the given side
// ((ρ|E1)⟨p⟩E2 or E1⟨p⟩(ρ|E2)) — the one-step strict generalization used in
// the proof of Proposition 5.7. It does not check unambiguity of the result.
func (e Expr) Extend(rho []symtab.Symbol, side string) (Expr, error) {
	single, err := lang.Single(rho, e.sigma, e.opt)
	if err != nil {
		return Expr{}, err
	}
	switch side {
	case "left":
		l, err := e.left.Union(single)
		if err != nil {
			return Expr{}, err
		}
		out := New(l, e.p, e.right)
		out.opt = e.opt
		return out, nil
	default:
		r, err := e.right.Union(single)
		if err != nil {
			return Expr{}, err
		}
		out := New(e.left, e.p, r)
		out.opt = e.opt
		return out, nil
	}
}
