package extract

import (
	"context"
	"math/rand"
	"testing"

	"resilex/internal/machine"
	"resilex/internal/symtab"
)

// checkStreamAgrees feeds every word through the one-pass StreamMatcher in
// both modes and demands agreement with the two-scan Matcher — the
// differential oracle of the streaming refactor.
func checkStreamAgrees(t *testing.T, x Expr, words [][]symtab.Symbol) {
	t.Helper()
	m, err := x.Compile()
	if err != nil {
		t.Fatal(err)
	}
	sm, err := x.CompileStream()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range words {
		want := m.All(w)
		got := sm.All(w)
		if len(got) != len(want) {
			t.Fatalf("on %v: stream %v, two-pass %v", w, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("on %v: stream %v, two-pass %v", w, got, want)
			}
		}
		wantPos, wantOK := m.Find(w)
		gotPos, gotOK := sm.Find(w)
		if gotOK != wantOK || (wantOK && gotPos != wantPos) {
			t.Fatalf("Find on %v: stream %d,%v; two-pass %d,%v", w, gotPos, gotOK, wantPos, wantOK)
		}
		// A CollectAll run must answer Find identically to FindLeftmost.
		r := sm.Get(CollectAll)
		for _, sym := range w {
			r.Feed(sym)
		}
		caPos, caOK := r.Find()
		sm.Put(r)
		if caOK != wantOK || (wantOK && caPos != wantPos) {
			t.Fatalf("CollectAll Find on %v: %d,%v; want %d,%v", w, caPos, caOK, wantPos, wantOK)
		}
	}
}

// TestStreamMatcherEquivalenceTokenFixtures sweeps every token-level fixture
// expression over all short words plus random longer ones; the one-pass
// matcher must agree with the two-scan matcher everywhere.
func TestStreamMatcherEquivalenceTokenFixtures(t *testing.T) {
	e := newTenv()
	words2 := allWords(e.sigma2, 6)
	words3 := allWords(e.sigma3, 5)
	rng := rand.New(rand.NewSource(43))
	randWords := func(sigma symtab.Alphabet) [][]symtab.Symbol {
		syms := sigma.Symbols()
		var out [][]symtab.Symbol
		for i := 0; i < 40; i++ {
			w := make([]symtab.Symbol, 7+rng.Intn(30))
			for j := range w {
				w[j] = syms[rng.Intn(len(syms))]
			}
			out = append(out, w)
		}
		return out
	}
	for _, f := range tokenFixtures {
		f := f
		t.Run(f.src, func(t *testing.T) {
			sigma, words := e.sigma2, words2
			if f.sigma == 3 {
				sigma, words = e.sigma3, words3
			}
			x := e.expr(t, f.src, sigma)
			checkStreamAgrees(t, x, append(words, randWords(sigma)...))
		})
	}
}

// TestStreamMatcherEquivalenceHTMLFixtures replays the Figure 1 documents —
// plus out-of-Σ and perturbed variants — through the HTML-level fixtures.
// The out-of-Σ cases are the load-bearing ones: an unknown tag anywhere in a
// suffix must kill every candidate whose suffix contains it, exactly as the
// two-pass backward sweep rejects it.
func TestStreamMatcherEquivalenceHTMLFixtures(t *testing.T) {
	h := newHTMLEnv()
	docs := [][]symtab.Symbol{
		h.doc(t, fig1Doc1),
		h.doc(t, fig1Doc2),
		h.doc(t, "TR TR TR"),
		h.doc(t, "TR TR"),
		h.doc(t, "FORM INPUT INPUT /FORM"),
		nil,
	}
	out := h.tab.Intern("BLINK")
	docs = append(docs, append(h.doc(t, fig1Doc1), out))
	withMid := append([]symtab.Symbol{}, h.doc(t, fig1Doc1)...)
	withMid[3] = out
	docs = append(docs, withMid)
	docs = append(docs, []symtab.Symbol{out})
	for _, src := range htmlFixtures {
		src := src
		t.Run(src, func(t *testing.T) {
			x, err := Parse(src, h.tab, h.sigma, machine.Options{})
			if err != nil {
				t.Fatal(err)
			}
			checkStreamAgrees(t, x, docs)
		})
	}
}

// TestStreamMatcherAmbiguous: CollectAll must report every valid position of
// an ambiguous expression, in ascending order, matching the two-pass answer
// and the direct oracle.
func TestStreamMatcherAmbiguous(t *testing.T) {
	e := newTenv()
	x := e.expr(t, "p* <p> p*", e.sigma2)
	sm, err := x.CompileStream()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range allWords(e.sigma2, 7) {
		got := sm.All(w)
		want := oracleSplits(x, w)
		if len(got) != len(want) {
			t.Fatalf("on %v: stream %v, oracle %v", w, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("on %v: stream %v, oracle %v", w, got, want)
			}
		}
	}
}

// TestStreamRunIncremental: Feed reports candidate births, Live tracks the
// surviving candidate set, and results are stable before/after Put-Get
// recycling of a run.
func TestStreamRunIncremental(t *testing.T) {
	e := newTenv()
	// q* <p> q*: the single p in a sea of q's is the candidate.
	x := e.expr(t, "q* <p> q*", e.sigma2)
	sm, err := x.CompileStream()
	if err != nil {
		t.Fatal(err)
	}
	r := sm.Get(FindLeftmost)
	if born := r.Feed(e.q); born {
		t.Error("q reported as candidate birth")
	}
	if born := r.Feed(e.p); !born {
		t.Error("p after q* not reported as candidate birth")
	}
	if live := r.Live(nil); len(live) != 1 || live[0] != 1 {
		t.Errorf("Live = %v, want [1]", live)
	}
	r.Feed(e.q)
	if pos, ok := r.Find(); !ok || pos != 1 {
		t.Errorf("Find = %d,%v, want 1,true", pos, ok)
	}
	// A second p kills the first candidate's suffix (q* only) and is itself
	// stillborn as prefix "q p q" ∉ q*.
	if born := r.Feed(e.p); born {
		t.Error("second p reported as candidate birth")
	}
	if _, ok := r.Find(); ok {
		t.Error("Find succeeded after suffix violation")
	}
	if live := r.Live(nil); len(live) != 0 {
		t.Errorf("Live = %v, want empty", live)
	}
	sm.Put(r)
	// The recycled run starts fresh.
	r2 := sm.Get(FindLeftmost)
	r2.Feed(e.p)
	if pos, ok := r2.Find(); !ok || pos != 0 {
		t.Errorf("recycled run Find = %d,%v, want 0,true", pos, ok)
	}
	sm.Put(r2)
	hits, misses := sm.PoolStats()
	if hits < 1 || misses < 1 {
		t.Errorf("PoolStats = %d,%d, want at least one of each", hits, misses)
	}
}

// TestStreamRunZeroAlloc: a warmed run processing a document in FindLeftmost
// mode — the serving configuration — must not allocate at all.
func TestStreamRunZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates on the warm path")
	}
	h := newHTMLEnv()
	x, err := Parse(htmlFixtures[0], h.tab, h.sigma, machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sm, err := x.CompileStream()
	if err != nil {
		t.Fatal(err)
	}
	doc := h.doc(t, fig1Doc1)
	for i := 0; i < 1024; i++ { // a long document exercising steady state
		doc = append(doc, doc[i%12])
	}
	// Warm the pool.
	r := sm.Get(FindLeftmost)
	for _, sym := range doc {
		r.Feed(sym)
	}
	sm.Put(r)
	allocs := testing.AllocsPerRun(100, func() {
		r := sm.Get(FindLeftmost)
		for _, sym := range doc {
			r.Feed(sym)
		}
		_, _ = r.Find()
		sm.Put(r)
	})
	if allocs != 0 {
		t.Fatalf("warm streaming run allocated %.1f times per document, want 0", allocs)
	}
}

// TestStreamCompileErrors: expired deadlines and state-limit overflows are
// reported, so callers can fall back to the two-pass matcher.
func TestStreamCompileErrors(t *testing.T) {
	e := newTenv()
	x := e.expr(t, "q* <p> .*", e.sigma2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dead := x.WithOptions(machine.Options{Ctx: ctx})
	if _, err := dead.CompileStream(); err == nil {
		t.Error("CompileStream succeeded with a canceled context")
	}
}

// FuzzStreamTwoPassEquiv is the streaming-vs-two-pass differential fuzz
// target: random words (including out-of-Σ bytes) through every fixture
// expression must produce identical All answers from both matchers.
func FuzzStreamTwoPassEquiv(f *testing.F) {
	e := newTenv()
	type compiled struct {
		m  *Matcher
		sm *StreamMatcher
	}
	var fixtures []compiled
	for _, fx := range tokenFixtures {
		sigma := e.sigma2
		if fx.sigma == 3 {
			sigma = e.sigma3
		}
		x, err := Parse(fx.src, e.tab, sigma, machine.Options{})
		if err != nil {
			f.Fatal(err)
		}
		m, err := x.Compile()
		if err != nil {
			f.Fatal(err)
		}
		sm, err := x.CompileStream()
		if err != nil {
			f.Fatal(err)
		}
		fixtures = append(fixtures, compiled{m, sm})
	}
	// A symbol outside every fixture alphabet: suffixes containing it are
	// invalid no matter what E2 says.
	alien := e.tab.Intern("alien")
	f.Add(uint8(0), []byte("pq"))
	f.Add(uint8(2), []byte("ppqp"))
	f.Add(uint8(14), []byte("qpp\x03q"))
	f.Add(uint8(19), []byte("qrprq"))
	f.Fuzz(func(t *testing.T, which uint8, data []byte) {
		c := fixtures[int(which)%len(fixtures)]
		word := make([]symtab.Symbol, len(data))
		for i, b := range data {
			switch b % 4 {
			case 0:
				word[i] = e.p
			case 1:
				word[i] = e.q
			case 2:
				word[i] = e.r
			default:
				word[i] = alien
			}
		}
		want := c.m.All(word)
		got := c.sm.All(word)
		if len(got) != len(want) {
			t.Fatalf("stream %v, two-pass %v on %v", got, want, word)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("stream %v, two-pass %v on %v", got, want, word)
			}
		}
		wantPos, wantOK := c.m.Find(word)
		gotPos, gotOK := c.sm.Find(word)
		if gotOK != wantOK || (wantOK && gotPos != wantPos) {
			t.Fatalf("Find: stream %d,%v; two-pass %d,%v on %v", gotPos, gotOK, wantPos, wantOK, word)
		}
	})
}
