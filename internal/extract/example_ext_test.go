package extract_test

import (
	"fmt"

	"resilex/internal/extract"
	"resilex/internal/machine"
	"resilex/internal/symtab"
)

// A content-addressed cache compiles each distinct expression once; later
// loads of the same source — whatever the Σ-name order — are hits sharing
// one compiled artifact.
func ExampleCache() {
	cache := extract.NewCache(64, nil)
	for _, sigma := range [][]string{{"p", "q"}, {"q", "p"}, {"q", "p", "p"}} {
		if _, err := cache.Load("q* <p> .*", sigma, machine.Options{}); err != nil {
			panic(err)
		}
	}
	st := cache.Stats()
	fmt.Printf("misses=%d hits=%d entries=%d\n", st.Misses, st.Hits, st.Entries)
	// Output: misses=1 hits=2 entries=1
}

// CompileLazy builds a matcher whose component DFAs materialize on demand,
// so matching starts without paying the worst-case determinization.
func ExampleExpr_CompileLazy() {
	tab := symtab.NewTable()
	p, q := tab.Intern("p"), tab.Intern("q")
	x, err := extract.Parse("q* <p> .*", tab, symtab.NewAlphabet(p, q), machine.Options{})
	if err != nil {
		panic(err)
	}
	m, err := x.CompileLazy()
	if err != nil {
		panic(err)
	}
	pos, ok, err := m.Find([]symtab.Symbol{q, q, p, q})
	if err != nil {
		panic(err)
	}
	fmt.Println(pos, ok)
	// Output: 2 true
}
