package extract

import (
	"fmt"
	"math/rand"
	"testing"

	"resilex/internal/symtab"
)

func TestMatcherTwoScanAgreesWithNaive(t *testing.T) {
	e := newTenv()
	exprs := []string{
		"q* <p> .*",
		"[^ p]* <p> .*",
		"(q p)* <p> .*",
		"p* <p> p*",
		". . <p> q",
		"(p | p p) <p> (p | p p)",
	}
	words := allWords(e.sigma2, 7)
	for _, src := range exprs {
		x := e.expr(t, src, e.sigma2)
		m, err := x.Compile()
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range words {
			fast := m.All(w)
			slow := m.allNaive(w)
			if len(fast) != len(slow) {
				t.Fatalf("%q on %q: two-scan %v, naive %v", src, e.tab.String(w), fast, slow)
			}
			for i := range fast {
				if fast[i] != slow[i] {
					t.Fatalf("%q on %q: two-scan %v, naive %v", src, e.tab.String(w), fast, slow)
				}
			}
		}
	}
}

// The ablation: the two-scan matcher is linear in the document, the naive
// one quadratic around dense mark regions.
func BenchmarkMatcherAblation(b *testing.B) {
	tab := symtab.NewTable()
	p, q := tab.Intern("p"), tab.Intern("q")
	sigma := symtab.NewAlphabet(p, q)
	x := MustParse("[^ p]* <p> .*", tab, sigma)
	m, err := x.Compile()
	if err != nil {
		b.Fatal(err)
	}
	// Dense regime: every position passes the prefix test and the suffix
	// check cannot short-circuit, so the naive matcher is quadratic. The
	// sparse expression above lets naive short-circuit (included for
	// honesty: the two-scan wins only asymptotically / in dense regimes).
	dense := MustParse(".* <p> .*", tab, sigma)
	md, err := dense.Compile()
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{100, 1000, 10000} {
		word := make([]symtab.Symbol, n)
		for i := range word {
			if rng.Intn(4) == 0 {
				word[i] = p
			} else {
				word[i] = q
			}
		}
		for _, mode := range []struct {
			name string
			m    *Matcher
		}{{"sparse", m}, {"dense", md}} {
			b.Run(fmt.Sprintf("%s/two-scan/n=%d", mode.name, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					mode.m.All(word)
				}
			})
			b.Run(fmt.Sprintf("%s/naive/n=%d", mode.name, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					mode.m.allNaive(word)
				}
			})
		}
	}
}

func TestStreamMatchesBatch(t *testing.T) {
	e := newTenv()
	// Σ*-right expressions stream; results must equal the batch matcher.
	exprs := []string{
		"[^ p]* <p> .*",
		"(q p)* <p> .*",
		"q* p q* <p> .*",
	}
	words := allWords(e.sigma2, 7)
	for _, src := range exprs {
		x := e.expr(t, src, e.sigma2)
		m, err := x.Compile()
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range words {
			s, ok := m.Stream()
			if !ok {
				t.Fatalf("%q: Stream unavailable despite Σ* suffix", src)
			}
			streamPos := -1
			for _, sym := range w {
				if pos, found := s.Feed(sym); found {
					streamPos = pos
				}
			}
			if rp, rok := s.Result(); (rok && rp != streamPos) || (!rok && streamPos != -1) {
				t.Fatalf("%q: Result inconsistent with Feed", src)
			}
			batchPos, batchOK := m.Find(w)
			if batchOK != (streamPos >= 0) || (batchOK && batchPos != streamPos) {
				t.Fatalf("%q on %q: stream %d, batch (%d, %v)",
					src, e.tab.String(w), streamPos, batchPos, batchOK)
			}
		}
	}
	// Non-universal suffix: streaming refused.
	x := e.expr(t, "q* <p> q", e.sigma2)
	m, err := x.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Stream(); ok {
		t.Error("Stream available for non-Σ* suffix")
	}
}

func TestStreamForeignSymbol(t *testing.T) {
	e := newTenv()
	x := e.expr(t, "q* <p> .*", e.sigma2)
	m, err := x.Compile()
	if err != nil {
		t.Fatal(err)
	}
	s, ok := m.Stream()
	if !ok {
		t.Fatal("no stream")
	}
	// An out-of-Σ token kills the prefix; later p's must not match.
	for _, sym := range []symtab.Symbol{e.q, e.r, e.p} {
		if _, found := s.Feed(sym); found {
			t.Fatal("matched through a foreign symbol")
		}
	}
	if _, ok := s.Result(); ok {
		t.Error("Result ok after dead prefix")
	}
}
