package extract

import (
	"errors"
	"testing"
)

func TestComposePropositions66And67(t *testing.T) {
	e := newTenv()
	// Maximal pieces: (Σ−q)*⟨q⟩Σ* and (Σ−p)*⟨p⟩Σ*.
	a := e.expr(t, "[^ q]* <q> .*", e.sigma2)
	b := e.expr(t, "[^ p]* <p> .*", e.sigma2)
	for _, x := range []Expr{a, b} {
		if m, err := x.Maximal(); err != nil || !m {
			t.Fatalf("piece not maximal: %v %v", m, err)
		}
	}
	c, err := Compose(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Proposition 6.7: the composite is maximal and unambiguous.
	if m, err := c.Maximal(); err != nil || !m {
		t.Fatalf("composite not maximal: %v %v", m, err)
	}
	// Composite left = (Σ−q)*·q·(Σ−p)*.
	want := e.expr(t, "[^ q]* q [^ p]* <p> .*", e.sigma2)
	if !c.Equal(want) {
		t.Errorf("composite = %s", c.String(e.tab))
	}

	// Proposition 6.6 (q = p case allowed): compose two p-marked pieces.
	d, err := Compose(b, b)
	if err != nil {
		t.Fatal(err)
	}
	if unamb, err := d.Unambiguous(); err != nil || !unamb {
		t.Fatalf("q=p composite not unambiguous: %v %v", unamb, err)
	}
	if m, err := d.Maximal(); err != nil || !m {
		t.Fatalf("q=p composite not maximal: %v %v", m, err)
	}
}

// Merely-unambiguous (non-maximal) pieces still compose to an unambiguous
// expression (Proposition 6.6).
func TestComposeUnambiguousOnly(t *testing.T) {
	e := newTenv()
	a := e.expr(t, "q <q> .*", e.sigma2) // unambiguous, not maximal
	b := e.expr(t, "q p <p> .*", e.sigma2)
	c, err := Compose(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if unamb, err := c.Unambiguous(); err != nil || !unamb {
		t.Errorf("composite not unambiguous: %v %v", unamb, err)
	}
	if m, _ := c.Maximal(); m {
		t.Error("composite of non-maximal pieces should not be maximal here")
	}
}

// Experiment E7: pivot maximization is strictly more powerful than plain
// left-filtering — this input has unboundedly many p's in E, so Algorithm
// 6.2 alone fails, while the pivot framework succeeds.
func TestPivotStrictlyMorePowerful(t *testing.T) {
	e := newTenv()
	in := e.expr(t, "(p q)* r q <p> .*", e.sigma3)
	if unamb, _ := in.Unambiguous(); !unamb {
		t.Fatal("test input should be unambiguous")
	}
	if _, err := LeftFilter(in); !errors.Is(err, ErrUnbounded) {
		t.Fatalf("LeftFilter should fail with ErrUnbounded, got %v", err)
	}
	out, err := Pivot(in)
	if err != nil {
		t.Fatal(err)
	}
	requireMaximizedProperly(t, in, out, "(pq)*rq⟨p⟩Σ*")
	// Expected shape: (Σ−r)*·r·(Σ−q)*·q·(Σ−p)* ⟨p⟩ Σ*.
	want := e.expr(t, "[^ r]* r [^ q]* q [^ p]* <p> .*", e.sigma3)
	if !out.Equal(want) {
		t.Errorf("pivot output = %s, want %s", out.String(e.tab), want.String(e.tab))
	}
}

func TestPivotDecompositionInspection(t *testing.T) {
	e := newTenv()
	in := e.expr(t, "(p q)* r q <p> .*", e.sigma3)
	dec, err := PivotDecomposition(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Pivots) != 2 || dec.Pivots[0] != e.r || dec.Pivots[1] != e.q {
		t.Fatalf("pivots = %v, want [r q]", dec.Pivots)
	}
	if len(dec.Segments) != 3 {
		t.Fatalf("segments = %d, want 3", len(dec.Segments))
	}
	s := dec.String(e.tab)
	if s == "" {
		t.Error("empty decomposition rendering")
	}
}

// When a candidate pivot violates the side conditions, it is demoted and the
// decomposition still succeeds with fewer pivots.
func TestPivotDemotion(t *testing.T) {
	e := newTenv()
	// Factors: q* q r q* — the first literal q is a bad pivot (q* before it
	// is ambiguous w.r.t. q), but r still works.
	in := e.expr(t, "q* q r q <p> .*", e.sigma3)
	if unamb, _ := in.Unambiguous(); !unamb {
		t.Fatal("input should be unambiguous")
	}
	dec, err := PivotDecomposition(in)
	if err != nil {
		t.Fatal(err)
	}
	// The q right after q* must be demoted (q*⟨q⟩Σ* is ambiguous); r and the
	// final q survive as pivots.
	if len(dec.Pivots) != 2 || dec.Pivots[0] != e.r || dec.Pivots[1] != e.q {
		t.Fatalf("pivots = %v, want [r q] after demotion", dec.Pivots)
	}
	out, err := Pivot(in)
	if err != nil {
		t.Fatal(err)
	}
	requireMaximizedProperly(t, in, out, "q*qrq⟨p⟩Σ*")
}

func TestPivotOnSyntaxlessExpression(t *testing.T) {
	e := newTenv()
	base := e.expr(t, "q p <p> .*", e.sigma2)
	synthesized := New(base.Left(), base.P(), base.Right()) // drops ASTs
	if _, err := Pivot(synthesized); !errors.Is(err, ErrNotApplicable) {
		t.Errorf("Pivot without syntax: err = %v", err)
	}
	// Maximize still succeeds via the left-filter fallback.
	out, err := Maximize(synthesized)
	if err != nil {
		t.Fatal(err)
	}
	requireMaximizedProperly(t, synthesized, out, "syntaxless")
}

func TestPivotAmbiguousRejected(t *testing.T) {
	e := newTenv()
	if _, err := Pivot(e.expr(t, "(p q)* <p> .*", e.sigma2)); !errors.Is(err, ErrAmbiguous) {
		t.Errorf("err = %v", err)
	}
}

func TestPivotGapRejected(t *testing.T) {
	e := newTenv()
	// (p|pp)⟨p⟩q: widening precondition fails.
	if _, err := Pivot(e.expr(t, "(p | p p) <p> q", e.sigma2)); !errors.Is(err, ErrNotApplicable) {
		t.Errorf("err = %v", err)
	}
}

func TestPivotTotallyUnbounded(t *testing.T) {
	e := newTenv()
	// (qp)*⟨p⟩Σ* is unambiguous but unbounded with no usable pivot at all:
	// the only literal factors sit inside the star.
	if _, err := Pivot(e.expr(t, "(q p)* <p> .*", e.sigma2)); !errors.Is(err, ErrUnbounded) {
		t.Errorf("err = %v", err)
	}
	// Maximize reports not-applicable overall.
	if _, err := Maximize(e.expr(t, "(q p)* <p> .*", e.sigma2)); !errors.Is(err, ErrNotApplicable) {
		t.Errorf("Maximize err = %v", err)
	}
}

// A deeper chain of pivots: a·b·c literal anchors with starred fillers.
func TestPivotChain(t *testing.T) {
	e := newTenv()
	in := e.expr(t, "(q p)* r (q p)* r q <p> .*", e.sigma3)
	if unamb, _ := in.Unambiguous(); !unamb {
		t.Skip("chain input ambiguous — adjust")
	}
	out, err := Pivot(in)
	if err != nil {
		t.Fatal(err)
	}
	requireMaximizedProperly(t, in, out, "chain")
}

// When even the final segment is unbounded, candidates are dropped from the
// right until none remain and the strategy reports ErrUnbounded.
func TestPivotFinalSegmentUnbounded(t *testing.T) {
	e := newTenv()
	// Factors: q, r, (q p)* — the starred block with unbounded p sits last,
	// so the final ⟨p⟩ segment is unbounded for every pivot choice.
	in := e.expr(t, "q r (q p)* <p> .*", e.sigma3)
	if unamb, _ := in.Unambiguous(); !unamb {
		t.Fatal("input should be unambiguous")
	}
	if _, err := Pivot(in); !errors.Is(err, ErrUnbounded) {
		t.Errorf("err = %v, want ErrUnbounded", err)
	}
}

// PivotRight handles right-side context with unboundedly many marks — the
// mirror of TestPivotStrictlyMorePowerful.
func TestPivotRight(t *testing.T) {
	e := newTenv()
	in := e.expr(t, ".* <p> q r (q p)*", e.sigma3)
	if unamb, _ := in.Unambiguous(); !unamb {
		t.Fatal("input should be unambiguous")
	}
	// Plain right-filtering fails: the reversed suffix has unbounded p.
	if _, err := RightFilter(in); !errors.Is(err, ErrUnbounded) {
		t.Fatalf("RightFilter: %v, want ErrUnbounded", err)
	}
	out, err := PivotRight(in)
	if err != nil {
		t.Fatal(err)
	}
	requireMaximizedProperly(t, in, out, "Σ*⟨p⟩qr(qp)*")
	if !out.Left().IsUniversal() {
		t.Error("PivotRight output should have Σ* on the left")
	}
	// Expected mirror shape: Σ* ⟨p⟩ (Σ−q)*ᴿ… — verify against the reversed
	// closed form: ((Σ−r)* r (Σ−q)* q (Σ−p)*)ᴿ = (Σ−p)* q (Σ−q)* r (Σ−r)*.
	want := e.expr(t, ".* <p> [^ p]* q [^ q]* r [^ r]*", e.sigma3)
	if !out.Equal(want) {
		t.Errorf("PivotRight output = %s,\nwant %s", out.String(e.tab), want.String(e.tab))
	}
	// Maximize dispatch reaches it too.
	viaDispatch, err := Maximize(in)
	if err != nil {
		t.Fatal(err)
	}
	if m, _ := viaDispatch.Maximal(); !m {
		t.Error("Maximize dispatch output not maximal")
	}
}

func TestPivotRightNoSyntax(t *testing.T) {
	e := newTenv()
	base := e.expr(t, ".* <p> q", e.sigma2)
	synthesized := New(base.Left(), base.P(), base.Right())
	if _, err := PivotRight(synthesized); !errors.Is(err, ErrNotApplicable) {
		t.Errorf("err = %v", err)
	}
}
