// Package extract implements the paper's primary contribution: extraction
// expressions E1⟨p⟩E2 over a finite alphabet (Definition 4.1), their parse/
// extract semantics, the unambiguity consistency requirement (Definition
// 4.2) with two polynomial decision procedures (Propositions 5.4 and 5.5),
// the resilience partial order ⪯ (Definition 4.4), the maximality test
// (Proposition 5.7 / Corollary 5.8), and the synthesis algorithms —
// left-filtering maximization (Algorithm 6.2), its mirror image, and the
// pivot maximization framework (Propositions 6.6–6.8).
//
// Three runtime surfaces serve compiled expressions. Compile builds the
// eager two-scan Matcher (forward E1-DFA plus one backward sweep, O(n) per
// document); CompileLazy builds a LazyMatcher over on-the-fly DFAs for
// expressions whose eager determinization would blow the state budget; and
// Expr.CompileStream builds the one-pass StreamMatcher, which resolves the
// suffix conjunct online with a bounded thread set so documents can be
// matched token by token as they arrive, in O(1) memory beyond the match
// region — provably equivalent to the two-scan Matcher (THEORY.md,
// "One-pass streaming extraction ≡ the two-scan matcher"). For
// high-throughput serving, Cache memoizes compiled artifacts under a
// content address — a hash of the canonicalized expression and its
// alphabet — with LRU eviction and singleflight deduplication of
// concurrent cold compiles (see ExampleCache).
package extract

import (
	"errors"
	"fmt"
	"sync"

	"resilex/internal/lang"
	"resilex/internal/machine"
	"resilex/internal/rx"
	"resilex/internal/symtab"
)

// Sentinel errors. Budget exhaustion from the automata layer is passed
// through wrapping machine.ErrBudget.
var (
	// ErrAmbiguous is returned by operations that require an unambiguous
	// input expression (Definition 4.2).
	ErrAmbiguous = errors.New("extract: expression is ambiguous")
	// ErrUnbounded is returned by the left-filtering maximization when the
	// prefix expression matches an unbounded number of marked symbols, so
	// the Algorithm 6.2 loop would not terminate (Lemma 6.4(4,5)).
	ErrUnbounded = errors.New("extract: expression matches an unbounded number of marked symbols")
	// ErrNotApplicable is returned when a maximization strategy's side
	// conditions do not hold for the input.
	ErrNotApplicable = errors.New("extract: maximization strategy not applicable")
)

// Expr is an extraction expression E1⟨p⟩E2 (Definition 4.1): a regular
// expression with one marked occurrence of the symbol p. The component
// languages are canonicalized; when the expression was built from syntax,
// the original ASTs are retained (they drive pivot discovery and printing).
// Expr values are immutable and safe for concurrent use.
type Expr struct {
	left, right lang.Language
	p           symtab.Symbol
	sigma       symtab.Alphabet
	opt         machine.Options

	// Optional syntax, nil when the expression was synthesized.
	leftAST, rightAST *rx.Node

	// Lazily compiled matcher, shared by all copies of this value so that
	// Splits/Extract pay compilation once.
	mc *matcherBox
}

type matcherBox struct {
	once sync.Once
	m    *Matcher
}

// New builds E1⟨p⟩E2 from component languages. The alphabet is the union of
// both languages' alphabets and {p}; components are promoted to it.
func New(left lang.Language, p symtab.Symbol, right lang.Language) Expr {
	sigma := left.Sigma().Union(right.Sigma()).With(p)
	l, r := promote(left, sigma), promote(right, sigma)
	return Expr{left: l, right: r, p: p, sigma: sigma, opt: left.Options(), mc: &matcherBox{}}
}

func promote(l lang.Language, sigma symtab.Alphabet) lang.Language {
	if l.Sigma().Equal(sigma) {
		return l
	}
	// Union with ∅ over the wider alphabet re-homes the language. Run it
	// without the time bound: the product has a 1-state right operand, so
	// this is linear in an already-bounded input and cannot fail.
	rehomed := l
	if l.Options().Ctx != nil {
		rehomed = l.WithOptions(l.Options().WithoutContext())
	}
	out, err := rehomed.Union(lang.Empty(sigma, rehomed.Options()))
	if err != nil {
		panic(err) // product of a DFA with a 1-state DFA cannot exceed budget
	}
	return out.WithOptions(l.Options())
}

// FromAST builds an expression from component ASTs over sigma (which is
// widened to include p and all mentioned symbols).
func FromAST(left *rx.Node, p symtab.Symbol, right *rx.Node, sigma symtab.Alphabet, opt machine.Options) (Expr, error) {
	full := sigma.Union(left.Symbols()).Union(right.Symbols()).With(p)
	l, err := lang.FromRegex(left, full, opt)
	if err != nil {
		return Expr{}, fmt.Errorf("extract: left component: %w", err)
	}
	r, err := lang.FromRegex(right, full, opt)
	if err != nil {
		return Expr{}, fmt.Errorf("extract: right component: %w", err)
	}
	e := New(l, p, r)
	e.opt = opt
	e.leftAST, e.rightAST = left, right
	return e, nil
}

// Parse parses the concrete syntax "E1 <p> E2" (see internal/rx).
func Parse(src string, tab *symtab.Table, sigma symtab.Alphabet, opt machine.Options) (Expr, error) {
	m, err := rx.ParseMarked(src, tab, sigma)
	if err != nil {
		return Expr{}, err
	}
	return FromAST(m.Left, m.P, m.Right, m.Sigma, opt)
}

// MustParse is Parse panicking on error, for tests and examples.
func MustParse(src string, tab *symtab.Table, sigma symtab.Alphabet) Expr {
	e, err := Parse(src, tab, sigma, machine.Options{})
	if err != nil {
		panic(err)
	}
	return e
}

// Left returns L(E1).
func (e Expr) Left() lang.Language { return e.left }

// Right returns L(E2).
func (e Expr) Right() lang.Language { return e.right }

// P returns the marked symbol.
func (e Expr) P() symtab.Symbol { return e.p }

// Sigma returns the alphabet Σ.
func (e Expr) Sigma() symtab.Alphabet { return e.sigma }

// Options returns the state-budget options the expression carries.
func (e Expr) Options() machine.Options { return e.opt }

// WithOptions returns a copy of the expression whose subsequent
// construction work — Compile, CompileLazy, maximization — runs under opt.
// The copy shares the component languages and the compiled-matcher cache.
func (e Expr) WithOptions(opt machine.Options) Expr {
	e.opt = opt
	return e
}

// LeftAST returns the syntactic form of E1 when the expression was built
// from syntax, else nil.
func (e Expr) LeftAST() *rx.Node { return e.leftAST }

// RightAST returns the syntactic form of E2 when available, else nil.
func (e Expr) RightAST() *rx.Node { return e.rightAST }

// Language returns L(E1⟨p⟩E2) = L(E1·p·E2), the set of parsed strings.
func (e Expr) Language() (lang.Language, error) {
	pl, err := lang.Single([]symtab.Symbol{e.p}, e.sigma, e.opt)
	if err != nil {
		return lang.Language{}, err
	}
	lp, err := e.left.Concat(pl)
	if err != nil {
		return lang.Language{}, err
	}
	return lp.Concat(e.right)
}

// Parses reports ρ ∈ L(E1⟨p⟩E2).
func (e Expr) Parses(word []symtab.Symbol) bool {
	return len(e.Splits(word)) > 0
}

// Splits returns every position i such that word[i] = p, word[:i] ∈ L(E1)
// and word[i+1:] ∈ L(E2) — i.e. every way the expression can extract from
// the word. Unambiguous expressions yield at most one position per word
// (Definition 4.2).
func (e Expr) Splits(word []symtab.Symbol) []int {
	return e.matcher().All(word)
}

// Extract returns the unique valid split position, or ok=false when the
// expression does not parse the word. For ambiguous expressions it returns
// the leftmost valid position; use Splits to detect multiplicity.
func (e Expr) Extract(word []symtab.Symbol) (pos int, ok bool) {
	return e.matcher().Find(word)
}

func (e Expr) matcher() *Matcher {
	if e.mc == nil {
		// Zero-value Expr (not produced by a constructor): no cache to share.
		return e.compileMatcher()
	}
	e.mc.once.Do(func() { e.mc.m = e.compileMatcher() })
	return e.mc.m
}

// Generalizes reports f ⪯ e in the resilience partial order of Definition
// 4.4: L(F1) ⊆ L(E1) and L(F2) ⊆ L(E2).
func (e Expr) Generalizes(f Expr) (bool, error) {
	if e.p != f.p {
		return false, nil
	}
	l, err := f.left.SubsetOf(e.left)
	if err != nil || !l {
		return false, err
	}
	return f.right.SubsetOf(e.right)
}

// Equal reports component-language equality (same p, L(E1)=L(F1),
// L(E2)=L(F2)). This is finer than equality of parsed languages: the paper
// notes p⟨p⟩ppp and pp⟨p⟩pp parse the same set but extract differently.
func (e Expr) Equal(f Expr) bool {
	return e.p == f.p && e.left.Equal(f.left) && e.right.Equal(f.right)
}

// String renders the expression as "E1 <p> E2" using the table. Synthesized
// components are rendered from their minimal DFAs via state elimination,
// with classes abbreviated against Σ.
func (e Expr) String(tab *symtab.Table) string {
	left, right := e.leftAST, e.rightAST
	if left == nil {
		left = rx.Simplify(e.left.Regex())
	}
	if right == nil {
		right = rx.Simplify(e.right.Regex())
	}
	ls := rx.PrintSigma(left, tab, e.sigma)
	rs := rx.PrintSigma(right, tab, e.sigma)
	out := ""
	if ls != "#eps" {
		out += ls + " "
	}
	out += "<" + rx.QuoteName(tab.Name(e.p)) + ">"
	if rs != "#eps" {
		out += " " + rs
	}
	return out
}

// Size reports the total minimal-DFA state count of both components — the
// size measure used in the experiment tables.
func (e Expr) Size() int { return e.left.States() + e.right.States() }
