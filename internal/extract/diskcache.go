package extract

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"resilex/internal/machine"
	"resilex/internal/obs"
)

// artifactExt is the on-disk suffix of persisted compiled artifacts. Files
// with other suffixes (including in-progress temp files) are ignored by
// scans and never counted against capacity.
const artifactExt = ".rxa"

// DiskStats is a point-in-time view of the disk tier. Corrupt counts blobs
// that were present but undecodable — torn writes, stale format versions,
// bit rot — each of which was discarded and recorded as a miss as well.
type DiskStats struct {
	Hits, Misses, Evictions, Corrupt int64
	Entries                          int
}

// DiskCache is the second tier of the compiled-artifact cache: a directory
// of EncodeArtifact blobs under the same content-addressed keys as the
// in-memory tier, so compiled wrappers survive process restarts and can be
// shared between processes on one host.
//
// Capacity counts artifacts on disk: capacity < 0 is unbounded, capacity 0
// stores nothing (every Put is dropped, every Get misses), and otherwise the
// least-recently-used artifact — by file modification time, which Get
// refreshes — is evicted once the directory exceeds capacity. Writes are
// atomic (temp file + rename), so a crash mid-Put leaves at worst an ignored
// temp file, never a half-written artifact under a live key. A blob that
// fails to decode — torn write recovered from a hard crash, a stale format
// version, plain corruption — is deleted and reported as a miss, and the
// caller recompiles; see internal/codec for the framing this relies on.
//
// Lookups maintain extract_diskcache_{hits,misses,evictions,corrupt}_total
// and the gauge extract_diskcache_entries on the observer given to
// NewDiskCache (nil-safe no-ops without one). A DiskCache is safe for
// concurrent use.
type DiskCache struct {
	dir      string
	capacity int

	hits, misses, evictions, corrupt atomic.Int64

	obsHits, obsMisses, obsEvictions, obsCorrupt *obs.Counter
	obsEntries                                   *obs.Gauge

	mu sync.Mutex // serializes directory mutation (writes, evictions, deletes)
}

// NewDiskCache returns a disk tier rooted at dir, creating it if needed.
func NewDiskCache(dir string, capacity int, o *obs.Observer) (*DiskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("extract: disk cache: %w", err)
	}
	d := &DiskCache{
		dir:          dir,
		capacity:     capacity,
		obsHits:      o.Counter("extract_diskcache_hits_total"),
		obsMisses:    o.Counter("extract_diskcache_misses_total"),
		obsEvictions: o.Counter("extract_diskcache_evictions_total"),
		obsCorrupt:   o.Counter("extract_diskcache_corrupt_total"),
		obsEntries:   o.Gauge("extract_diskcache_entries"),
	}
	// A restarted process opens a populated directory: report the surviving
	// artifacts, not zero, before the first Put.
	d.obsEntries.Set(int64(d.countEntries()))
	return d, nil
}

// Dir returns the directory the cache persists into.
func (d *DiskCache) Dir() string { return d.dir }

// keyPath maps a content-addressed key to its artifact path, rejecting keys
// that could escape the cache directory. Keys from Key are lowercase hex and
// always pass.
func (d *DiskCache) keyPath(key string) (string, error) {
	if key == "" || len(key) > 128 {
		return "", fmt.Errorf("extract: disk cache: invalid key %q", key)
	}
	for _, c := range key {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-' || c == '_':
		default:
			return "", fmt.Errorf("extract: disk cache: invalid key %q", key)
		}
	}
	return filepath.Join(d.dir, key+artifactExt), nil
}

func (d *DiskCache) miss() {
	d.misses.Add(1)
	d.obsMisses.Inc()
}

// Get loads and decodes the artifact stored under key, refreshing its
// recency, or reports ok=false on a miss. Undecodable blobs are discarded
// (counted under Corrupt and as a miss); a blob whose content re-hashes to a
// different key — a renamed or cross-wired file — is treated the same way,
// so a disk hit is always the artifact the key names.
func (d *DiskCache) Get(key string, opt machine.Options) (*Compiled, bool) {
	path, err := d.keyPath(key)
	if err != nil {
		d.miss()
		return nil, false
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		d.miss()
		return nil, false
	}
	c, err := DecodeArtifact(blob, opt)
	if err == nil {
		// Content addressing is the integrity contract of the tier: the
		// decoded source must hash back to the key that named the file.
		rekey, kerr := Key(c.Src, c.SigmaNames)
		if kerr != nil || rekey != key {
			err = fmt.Errorf("extract: disk cache: artifact content does not match key %s", key)
		}
	}
	if err != nil {
		d.mu.Lock()
		os.Remove(path)
		d.mu.Unlock()
		d.corrupt.Add(1)
		d.obsCorrupt.Inc()
		d.miss()
		d.obsEntries.Set(int64(d.countEntries()))
		return nil, false
	}
	now := time.Now()
	os.Chtimes(path, now, now) // best-effort LRU recency bump
	d.hits.Add(1)
	d.obsHits.Inc()
	return c, true
}

// Put encodes the artifact and stores it under key, evicting the
// least-recently-used artifacts past capacity. Artifacts that cannot encode
// (no persisted source) and capacity-0 caches drop the write without error;
// I/O failures are returned.
func (d *DiskCache) Put(key string, c *Compiled) error {
	if d.capacity == 0 {
		return nil
	}
	blob, err := EncodeArtifact(c)
	if err != nil {
		return err
	}
	return d.putBlob(key, blob)
}

// putBlob atomically writes one already-encoded artifact blob under key —
// the shared body of Put and PutTuple.
func (d *DiskCache) putBlob(key string, blob []byte) error {
	if d.capacity == 0 {
		return nil
	}
	path, err := d.keyPath(key)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	tmp, err := os.CreateTemp(d.dir, ".put-*")
	if err != nil {
		return fmt.Errorf("extract: disk cache: %w", err)
	}
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("extract: disk cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("extract: disk cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("extract: disk cache: %w", err)
	}
	d.evictLocked()
	d.obsEntries.Set(int64(len(d.entriesLocked())))
	return nil
}

// entriesLocked lists artifact files, oldest modification first.
func (d *DiskCache) entriesLocked() []os.DirEntry {
	all, err := os.ReadDir(d.dir)
	if err != nil {
		return nil
	}
	var out []os.DirEntry
	for _, e := range all {
		if !e.IsDir() && strings.HasSuffix(e.Name(), artifactExt) {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		fi, ei := out[i].Info()
		fj, ej := out[j].Info()
		if ei != nil || ej != nil {
			return out[i].Name() < out[j].Name()
		}
		if !fi.ModTime().Equal(fj.ModTime()) {
			return fi.ModTime().Before(fj.ModTime())
		}
		return out[i].Name() < out[j].Name()
	})
	return out
}

func (d *DiskCache) evictLocked() {
	if d.capacity < 0 {
		return
	}
	entries := d.entriesLocked()
	for len(entries) > d.capacity {
		if os.Remove(filepath.Join(d.dir, entries[0].Name())) == nil {
			d.evictions.Add(1)
			d.obsEvictions.Inc()
		}
		entries = entries[1:]
	}
}

func (d *DiskCache) countEntries() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.entriesLocked())
}

// Len reports the number of artifacts currently on disk.
func (d *DiskCache) Len() int { return d.countEntries() }

// Stats returns the tier's lifetime counters and current size.
func (d *DiskCache) Stats() DiskStats {
	return DiskStats{
		Hits:      d.hits.Load(),
		Misses:    d.misses.Load(),
		Evictions: d.evictions.Load(),
		Corrupt:   d.corrupt.Load(),
		Entries:   d.countEntries(),
	}
}
