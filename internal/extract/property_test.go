package extract

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"resilex/internal/lang"
	"resilex/internal/machine"
	"resilex/internal/rx"
	"resilex/internal/symtab"
)

// genNode draws a random plain regular expression of bounded depth over the
// symbols; biased toward the concatenation-with-stars shapes extraction
// expressions take in practice.
func genNode(rng *rand.Rand, syms []symtab.Symbol, depth int) *rx.Node {
	if depth <= 0 {
		switch rng.Intn(4) {
		case 0:
			return rx.Epsilon()
		default:
			return rx.Sym(syms[rng.Intn(len(syms))])
		}
	}
	switch rng.Intn(10) {
	case 0, 1, 2, 3:
		n := 2 + rng.Intn(2)
		subs := make([]*rx.Node, n)
		for i := range subs {
			subs[i] = genNode(rng, syms, depth-1)
		}
		return rx.Concat(subs...)
	case 4, 5:
		n := 2 + rng.Intn(2)
		subs := make([]*rx.Node, n)
		for i := range subs {
			subs[i] = genNode(rng, syms, depth-1)
		}
		return rx.Union(subs...)
	case 6, 7:
		return rx.Star(genNode(rng, syms, depth-1))
	case 8:
		return rx.Opt(genNode(rng, syms, depth-1))
	default:
		return rx.Sym(syms[rng.Intn(len(syms))])
	}
}

// randomExprValue adapts genNode to testing/quick.
type randomExprValue struct {
	left, right *rx.Node
}

func (randomExprValue) Generate(rng *rand.Rand, size int) reflect.Value {
	tab := symtab.NewTable()
	syms := tab.InternAll("p", "q")
	depth := 2 + rng.Intn(2)
	return reflect.ValueOf(randomExprValue{
		left:  genNode(rng, syms, depth),
		right: genNode(rng, syms, depth),
	})
}

func quickEnv() (tenv, *quick.Config) {
	e := newTenv()
	return e, &quick.Config{MaxCount: 60}
}

// machineOpts bounds the state budget so degenerate random expressions fail
// fast instead of dominating the property run.
func machineOpts() machine.Options { return machine.Options{MaxStates: 4096} }

// Property: the factoring-based and marker-based unambiguity deciders agree
// with each other and with the brute-force split-counting oracle.
func TestQuickUnambiguityAgreement(t *testing.T) {
	e, cfg := quickEnv()
	marker := e.tab.Intern("MARKSYM")
	words := allWords(e.sigma2, 6)
	prop := func(v randomExprValue) bool {
		x, err := FromAST(v.left, e.p, v.right, e.sigma2, machineOpts())
		if err != nil {
			return true // budget exhaustion is acceptable, not a bug
		}
		byFactoring, err := x.Unambiguous()
		if err != nil {
			return true
		}
		byMarker, err := x.UnambiguousMarker(marker)
		if err != nil {
			return true
		}
		if byFactoring != byMarker {
			t.Logf("disagreement on %s", x.String(e.tab))
			return false
		}
		for _, w := range words {
			if len(oracleSplits(x, w)) >= 2 {
				if byFactoring {
					t.Logf("oracle found ambiguity missed on %s at %s",
						x.String(e.tab), e.tab.String(w))
					return false
				}
				return true
			}
		}
		// No short witness: the deciders may still correctly say ambiguous
		// (longer witnesses exist); but if they say ambiguous, the generated
		// witness must be valid.
		if !byFactoring {
			w, ok, err := x.AmbiguityWitness()
			if err != nil || !ok {
				t.Logf("ambiguous per decider but no witness: %v %v", ok, err)
				return false
			}
			if len(x.Splits(w)) < 2 {
				t.Logf("invalid witness %s for %s", e.tab.String(w), x.String(e.tab))
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: whenever Maximize succeeds, its output generalizes the input,
// is unambiguous, is maximal, and preserves extraction positions on all
// short words the input parses.
func TestQuickMaximizeContract(t *testing.T) {
	e, cfg := quickEnv()
	words := allWords(e.sigma2, 5)
	prop := func(v randomExprValue) bool {
		x, err := FromAST(v.left, e.p, v.right, e.sigma2, machineOpts())
		if err != nil {
			return true
		}
		if unamb, err := x.Unambiguous(); err != nil || !unamb {
			return true
		}
		out, err := Maximize(x)
		if err != nil {
			return true // not applicable / unbounded inputs are fine
		}
		if g, err := out.Generalizes(x); err != nil || !g {
			t.Logf("no generalization: %s → %s", x.String(e.tab), out.String(e.tab))
			return false
		}
		if unamb, err := out.Unambiguous(); err != nil || !unamb {
			t.Logf("ambiguous output for %s", x.String(e.tab))
			return false
		}
		if m, err := out.Maximal(); err != nil || !m {
			t.Logf("non-maximal output %s for %s", out.String(e.tab), x.String(e.tab))
			return false
		}
		for _, w := range words {
			if pi, ok := x.Extract(w); ok {
				po, ok2 := out.Extract(w)
				if !ok2 || po != pi {
					t.Logf("extraction drifted on %s", e.tab.String(w))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: the partial order ⪯ is consistent with language containment of
// the parsed languages (Definition 4.4 remark): f ⪯ e ⇒ L(f) ⊆ L(e).
func TestQuickOrderImpliesContainment(t *testing.T) {
	e, cfg := quickEnv()
	prop := func(v randomExprValue, w randomExprValue) bool {
		f, err := FromAST(v.left, e.p, v.right, e.sigma2, machineOpts())
		if err != nil {
			return true
		}
		g, err := FromAST(w.left, e.p, w.right, e.sigma2, machineOpts())
		if err != nil {
			return true
		}
		ge, err := g.Generalizes(f)
		if err != nil || !ge {
			return true
		}
		lf, err := f.Language()
		if err != nil {
			return true
		}
		lg, err := g.Language()
		if err != nil {
			return true
		}
		sub, err := lf.SubsetOf(lg)
		if err != nil {
			return true
		}
		if !sub {
			t.Logf("f ⪯ g but L(f) ⊄ L(g): %s vs %s", f.String(e.tab), g.String(e.tab))
		}
		return sub
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Splits agrees with the definitional oracle on random
// expressions and every short word.
func TestQuickMatcherOracle(t *testing.T) {
	e, cfg := quickEnv()
	words := allWords(e.sigma2, 5)
	prop := func(v randomExprValue) bool {
		x, err := FromAST(v.left, e.p, v.right, e.sigma2, machineOpts())
		if err != nil {
			return true
		}
		for _, w := range words {
			want := oracleSplits(x, w)
			got := x.Splits(w)
			if len(want) != len(got) {
				t.Logf("splits mismatch on %s: %v vs %v", e.tab.String(w), got, want)
				return false
			}
			for i := range want {
				if want[i] != got[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Invariant: w ∈ L(E1·p·E2) ⟺ the matcher finds at least one split.
func TestQuickLanguageMatchesSplits(t *testing.T) {
	e, cfg := quickEnv()
	words := allWords(e.sigma2, 5)
	prop := func(v randomExprValue) bool {
		x, err := FromAST(v.left, e.p, v.right, e.sigma2, machineOpts())
		if err != nil {
			return true
		}
		l, err := x.Language()
		if err != nil {
			return true
		}
		for _, w := range words {
			if l.Contains(w) != x.Parses(w) {
				t.Logf("Language/Splits disagree on %s for %s", e.tab.String(w), x.String(e.tab))
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Definition 4.4's remark: if f ⪯ g, the two expressions parse the words of
// L(f) *the same way* — extraction positions agree wherever f parses.
func TestQuickOrderPreservesExtraction(t *testing.T) {
	e, cfg := quickEnv()
	words := allWords(e.sigma2, 5)
	prop := func(v, w randomExprValue) bool {
		f, err := FromAST(v.left, e.p, v.right, e.sigma2, machineOpts())
		if err != nil {
			return true
		}
		// Make g ⪰ f by unioning the components.
		gl, err := f.Left().Union(mustLang(t, w.left, e))
		if err != nil {
			return true
		}
		gr, err := f.Right().Union(mustLang(t, w.right, e))
		if err != nil {
			return true
		}
		g := New(gl, e.p, gr)
		if ok, err := g.Generalizes(f); err != nil || !ok {
			t.Log("construction failed to produce f ⪯ g")
			return false
		}
		// Only meaningful when g is unambiguous (the order is defined within
		// unambiguous expressions).
		if unamb, err := g.Unambiguous(); err != nil || !unamb {
			return true
		}
		for _, word := range words {
			if pf, ok := f.Extract(word); ok {
				// f unambiguous? f ⪯ g with g unambiguous forces f unambiguous
				// on parsed words; extraction must agree.
				pg, ok2 := g.Extract(word)
				if !ok2 || pg != pf {
					t.Logf("parse drifted on %s: f=%d g=(%d,%v)", e.tab.String(word), pf, pg, ok2)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func mustLang(t *testing.T, n *rx.Node, e tenv) lang.Language {
	t.Helper()
	l, err := lang.FromRegex(n, e.sigma2, machineOpts())
	if err != nil {
		t.Skip("budget")
	}
	return l
}
