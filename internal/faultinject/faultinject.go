// Package faultinject is the deterministic fault-injection harness for the
// self-healing extraction runtime. Where internal/perturb models the paper's
// Section 3 change model (benign page evolution), faultinject models the
// operational failure modes a deployed robot meets: truncated transfers,
// malformed markup, starvation-level state budgets, and expired deadlines.
// Every injector is pure and seeded, so a failing schedule replays exactly.
//
// The injectors are designed to drive specific rungs of the supervisor's
// degradation ladder:
//
//	Truncate / GarbleTags  → rung 1 no-match, rung 2 refresh (markable) or
//	                         rung 4 miss (marker destroyed)
//	TinyBudget             → refresh failure wrapping machine.ErrBudget
//	ExpiredContext         → fail-fast errors wrapping machine.ErrDeadline
package faultinject

import (
	"context"
	"math/rand"
	"strings"

	"resilex/internal/machine"
)

// Truncate cuts the page after frac of its bytes (clamped to [0,1]) — the
// shape of an interrupted transfer. The cut lands mid-tag whenever the byte
// it falls on is inside one, which is the interesting case.
func Truncate(html string, frac float64) string {
	if frac <= 0 {
		return ""
	}
	if frac >= 1 {
		return html
	}
	return html[:int(float64(len(html))*frac)]
}

// TruncateAtTag cuts the page just before the n-th (0-based) occurrence of
// '<', deterministically landing the cut at a tag boundary.
func TruncateAtTag(html string, n int) string {
	at := 0
	for i := 0; i <= n; i++ {
		next := strings.IndexByte(html[at:], '<')
		if next < 0 {
			return html
		}
		at += next + 1
	}
	return html[:at-1]
}

// GarbleTags deletes the closing '>' of every k-th tag — markup a real
// tokenizer must survive without panicking. k <= 0 garbles every tag.
func GarbleTags(html string, k int) string {
	if k <= 0 {
		k = 1
	}
	var b strings.Builder
	b.Grow(len(html))
	tag := 0
	for i := 0; i < len(html); i++ {
		c := html[i]
		if c == '>' {
			tag++
			if tag%k == 0 {
				continue
			}
		}
		b.WriteByte(c)
	}
	return b.String()
}

// Shuffle returns a seeded byte-window shuffle of the page: windows of the
// given size are permuted, destroying structure while preserving content
// bytes. Deterministic in (html, seed, window).
func Shuffle(html string, seed int64, window int) string {
	if window <= 0 || window >= len(html) {
		return html
	}
	rng := rand.New(rand.NewSource(seed))
	chunks := make([]string, 0, len(html)/window+1)
	for i := 0; i < len(html); i += window {
		end := i + window
		if end > len(html) {
			end = len(html)
		}
		chunks = append(chunks, html[i:end])
	}
	rng.Shuffle(len(chunks), func(i, j int) { chunks[i], chunks[j] = chunks[j], chunks[i] })
	return strings.Join(chunks, "")
}

// StripMarker removes every occurrence of the data-target training marker,
// turning a refreshable drift page into an unmarkable one — the injector
// that forces the ladder past the refresh rung.
func StripMarker(html string) string {
	html = strings.ReplaceAll(html, " data-target", "")
	return strings.ReplaceAll(html, "data-target", "")
}

// TinyBudget returns construction options with an n-state budget — small
// enough (n of a few) that any real induce/maximize pipeline exhausts it
// and surfaces machine.ErrBudget.
func TinyBudget(n int) machine.Options {
	return machine.Options{MaxStates: n}
}

// ExpiredContext returns an already-cancelled context: every deadline poll
// fails immediately, so construction and extraction must fail fast with an
// error wrapping machine.ErrDeadline. The CancelFunc has already been
// called; callers need not invoke it again.
func ExpiredContext() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}
