package faultinject

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"resilex/internal/machine"
	"resilex/internal/wrapper"
)

// Training layouts for a small shop site, plus a redesigned page that uses
// tags outside the training alphabet — guaranteed to break the wrapper and
// guaranteed to be refreshable (the drift carries the training marker).
const (
	shopA = `<h1>Shop</h1><form><input type="image"><input type="text" data-target></form>`
	shopB = `<div><h1>Shop</h1><p>deal!</p><form><input type="image"><input type="text" data-target></form></div>`
	drift = `<table><tr><td><form><input type="image"><input type="text" data-target></form></td></tr></table>`
)

func trainShop(t *testing.T) *wrapper.Wrapper {
	t.Helper()
	w, err := wrapper.Train([]wrapper.Sample{
		{HTML: shopA, Target: wrapper.TargetMarker()},
		{HTML: shopB, Target: wrapper.TargetMarker()},
	}, wrapper.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func markerByAttr(html string) (wrapper.Target, bool) {
	if strings.Contains(html, wrapper.MarkerAttr) {
		return wrapper.TargetMarker(), true
	}
	return wrapper.Target{}, false
}

func newSupervisor(t *testing.T, cfg wrapper.SupervisorConfig) *wrapper.Supervisor {
	t.Helper()
	f := wrapper.NewFleet()
	f.Add("shop", trainShop(t))
	if cfg.Sleep == nil {
		cfg.Sleep = func(time.Duration) {}
	}
	return wrapper.NewSupervisor(f, cfg)
}

// TestInjectors pins down the injectors' deterministic behavior.
func TestInjectors(t *testing.T) {
	if got := Truncate(shopA, 0.5); len(got) != len(shopA)/2 {
		t.Errorf("Truncate length = %d", len(got))
	}
	if Truncate(shopA, 0) != "" || Truncate(shopA, 1) != shopA {
		t.Error("Truncate bounds wrong")
	}
	cut := TruncateAtTag(shopA, 2)
	if !strings.HasSuffix(cut, `<h1>Shop</h1>`) {
		t.Errorf("TruncateAtTag = %q", cut)
	}
	if g := GarbleTags(shopA, 1); strings.Contains(g, ">") {
		t.Errorf("GarbleTags(1) kept a '>': %q", g)
	}
	if Shuffle(shopA, 7, 8) != Shuffle(shopA, 7, 8) {
		t.Error("Shuffle not deterministic")
	}
	if Shuffle(shopA, 7, 8) == shopA {
		t.Error("Shuffle(seed 7) left the page intact")
	}
	if s := StripMarker(drift); strings.Contains(s, "data-target") {
		t.Errorf("StripMarker left marker: %q", s)
	}
	if TinyBudget(3).MaxStates != 3 {
		t.Error("TinyBudget")
	}
	if err := ExpiredContext().Err(); err == nil {
		t.Error("ExpiredContext not expired")
	}
}

// TestLadderRungs drives each of the supervisor's four rungs with an
// injected fault chosen to stop exactly at that rung.
func TestLadderRungs(t *testing.T) {
	ctx := context.Background()

	// Rung 1: no fault — the trained wrapper serves directly.
	s := newSupervisor(t, wrapper.SupervisorConfig{Marker: markerByAttr})
	out, err := s.Extract(ctx, "shop", shopB)
	if err != nil || out.Rung != wrapper.RungWrapper {
		t.Fatalf("rung 1: %+v, %v", out, err)
	}

	// Rung 2: a redesign outside the training alphabet, still markable —
	// the refresh rung widens the wrapper and serves.
	out, err = s.Extract(ctx, "shop", drift)
	if err != nil || out.Rung != wrapper.RungRefresh {
		t.Fatalf("rung 2: %+v, %v", out, err)
	}

	// Rung 3: the page arrives under an unknown key; the shop wrapper
	// claims it unambiguously during the probe.
	s = newSupervisor(t, wrapper.SupervisorConfig{Marker: markerByAttr})
	out, err = s.Extract(ctx, "cdn-mirror", shopB)
	if err != nil || out.Rung != wrapper.RungProbe || out.Key != "shop" {
		t.Fatalf("rung 3: %+v, %v", out, err)
	}

	// Rung 4: drift with the marker stripped and the tail truncated —
	// unmatchable, unmarkable, unclaimable. The ladder bottoms out in a
	// structured miss.
	broken := Truncate(StripMarker(drift), 0.6)
	_, err = s.Extract(ctx, "shop", broken)
	var miss *wrapper.MissReport
	if !errors.As(err, &miss) {
		t.Fatalf("rung 4: err = %v, want *MissReport", err)
	}
	if miss.ProbeClaims != 0 || !errors.Is(err, wrapper.ErrNoMatch) {
		t.Errorf("rung 4 report: %+v", miss)
	}
}

// TestBreakerQuarantineAndProbeRecovery injects repeated failures until the
// circuit breaker opens, then shows a successful probe half-opening it and a
// clean request closing it again.
func TestBreakerQuarantineAndProbeRecovery(t *testing.T) {
	const threshold = 3
	s := newSupervisor(t, wrapper.SupervisorConfig{BreakerThreshold: threshold})
	ctx := context.Background()
	garbled := GarbleTags(shopB, 1)

	for i := 0; i < threshold; i++ {
		if _, err := s.Extract(ctx, "shop", garbled); err == nil {
			t.Fatalf("garbled page extracted on attempt %d", i)
		}
	}
	if h := s.Health("shop"); h.Breaker != wrapper.BreakerOpen {
		t.Fatalf("breaker = %v after %d injected failures", h.Breaker, threshold)
	}

	// Quarantined: even a clean page is not given to the wrapper directly —
	// but the probe rung claims it, which half-opens the breaker.
	out, err := s.Extract(ctx, "shop", shopB)
	if err != nil || out.Rung != wrapper.RungProbe {
		t.Fatalf("quarantined extract: %+v, %v", out, err)
	}
	if h := s.Health("shop"); h.Breaker != wrapper.BreakerHalfOpen {
		t.Fatalf("breaker = %v after probe success, want half-open", h.Breaker)
	}

	// The half-open trial succeeds and the breaker closes.
	out, err = s.Extract(ctx, "shop", shopB)
	if err != nil || out.Rung != wrapper.RungWrapper {
		t.Fatalf("trial extract: %+v, %v", out, err)
	}
	if h := s.Health("shop"); h.Breaker != wrapper.BreakerClosed {
		t.Errorf("breaker = %v after trial, want closed", h.Breaker)
	}
}

// TestExpiredContextFailsFast injects an already-expired context into
// extraction, refresh, and the supervisor ladder: each must return an error
// wrapping machine.ErrDeadline well within 100ms — no construction work.
func TestExpiredContextFailsFast(t *testing.T) {
	w := trainShop(t)
	s := newSupervisor(t, wrapper.SupervisorConfig{Marker: markerByAttr})
	ctx := ExpiredContext()

	start := time.Now()
	if _, err := w.ExtractContext(ctx, shopB); !errors.Is(err, machine.ErrDeadline) {
		t.Errorf("extract: err = %v", err)
	}
	if _, err := w.RefreshContext(ctx, wrapper.Sample{HTML: drift, Target: wrapper.TargetMarker()}); !errors.Is(err, machine.ErrDeadline) {
		t.Errorf("refresh: err = %v", err)
	}
	if _, err := s.Extract(ctx, "shop", shopB); !errors.Is(err, machine.ErrDeadline) {
		t.Errorf("supervisor: err = %v", err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("expired-context calls took %v, want < 100ms", elapsed)
	}
}

// TestTinyBudgetSurfacesTyped starves constructions with a few-state budget:
// every path must fail with an error wrapping machine.ErrBudget, never
// panic, and leave the serving wrapper intact.
func TestTinyBudgetSurfacesTyped(t *testing.T) {
	w := trainShop(t)
	starved := w.WithOptions(TinyBudget(2))
	if _, err := starved.Refresh(wrapper.Sample{HTML: drift, Target: wrapper.TargetMarker()}); !errors.Is(err, machine.ErrBudget) {
		t.Fatalf("starved refresh: err = %v, want ErrBudget", err)
	}

	// Through the supervisor: the refresh rung is starved via
	// RefreshOptions; the ladder degrades to a miss instead of panicking.
	s := newSupervisor(t, wrapper.SupervisorConfig{
		Marker:         markerByAttr,
		RefreshOptions: TinyBudget(2),
	})
	_, err := s.Extract(context.Background(), "shop", drift)
	var miss *wrapper.MissReport
	if !errors.As(err, &miss) {
		t.Fatalf("starved ladder: err = %v, want *MissReport", err)
	}
	// The serving wrapper survived the starved refresh.
	if out, err := s.Extract(context.Background(), "shop", shopB); err != nil || out.Rung != wrapper.RungWrapper {
		t.Errorf("serving wrapper damaged: %+v, %v", out, err)
	}
}

// TestInjectedPagesNeverPanic sweeps every injector over the training pages
// and runs extraction, training, and probing on the wreckage: errors are
// fine, panics are not (none of these paths may crash a robot).
func TestInjectedPagesNeverPanic(t *testing.T) {
	w := trainShop(t)
	f := wrapper.NewFleet()
	f.Add("shop", w)
	pages := []string{shopA, shopB, drift}
	var broken []string
	for _, p := range pages {
		broken = append(broken,
			Truncate(p, 0.3), Truncate(p, 0.7),
			TruncateAtTag(p, 1), TruncateAtTag(p, 3),
			GarbleTags(p, 1), GarbleTags(p, 2),
			Shuffle(p, 1, 4), Shuffle(p, 2, 16),
			StripMarker(p),
		)
	}
	for i, p := range broken {
		if _, err := w.Extract(p); err != nil {
			_ = err // typed failure is the contract; crash is the bug
		}
		f.Probe(p)
		if _, err := wrapper.Train([]wrapper.Sample{{HTML: p, Target: wrapper.TargetMarker()}}, wrapper.Config{}); err != nil {
			_ = err
		}
		_ = i
	}
}
