// Command tokenize prints the tag-sequence abstraction of HTML pages — the
// document representation all extraction expressions run over — one line
// per page. Useful for authoring expressions by hand and for debugging
// tokenizer configuration.
//
// Usage:
//
//	tokenize [-text] [-end=false] [-attrs type,name] [-skip BR,HR] page.html ...
//	cat page.html | tokenize -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"resilex/internal/htmltok"
	"resilex/internal/symtab"
)

func main() {
	keepText := flag.Bool("text", false, "emit a #text token for text runs")
	keepEnd := flag.Bool("end", true, "emit /TAG tokens for end tags")
	attrs := flag.String("attrs", "", "comma-separated attribute keys refining tag symbols")
	skip := flag.String("skip", "", "comma-separated tags to drop")
	spans := flag.Bool("spans", false, "print one token per line with its byte span")
	flag.Parse()
	files := flag.Args()
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "usage: tokenize [flags] page.html ... (or '-' for stdin)")
		os.Exit(2)
	}
	tab := symtab.NewTable()
	m := htmltok.NewMapper(tab)
	m.KeepText = *keepText
	m.KeepEndTags = *keepEnd
	if *attrs != "" {
		m.AttrKeys = strings.Split(*attrs, ",")
	}
	if *skip != "" {
		m.Skip = map[string]bool{}
		for _, s := range strings.Split(*skip, ",") {
			m.Skip[strings.ToUpper(strings.TrimSpace(s))] = true
		}
	}
	exit := 0
	for _, f := range files {
		var data []byte
		var err error
		if f == "-" {
			data, err = io.ReadAll(os.Stdin)
		} else {
			data, err = os.ReadFile(f)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "tokenize:", err)
			exit = 1
			continue
		}
		doc := m.Map(string(data))
		if *spans {
			for i, sym := range doc.Syms {
				sp := doc.SpanOf(i)
				fmt.Printf("%4d  %-24s [%d,%d)\n", i, tab.Name(sym), sp.Start, sp.End)
			}
			continue
		}
		fmt.Println(tab.String(doc.Syms))
	}
	os.Exit(exit)
}
