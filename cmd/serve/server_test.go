package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"resilex/internal/extract"
	"resilex/internal/machine"
	"resilex/internal/obs"
	"resilex/internal/wrapper"
)

const pageTop = `<P>
<H1>Virtual Supplier, Inc.</H1>
<P>
<form method="post" action="search.cgi">
<input type="image" align="left" src="search.gif" />
<input type="text" size="15" name="value" data-target />
<br />
<input type="radio" name="attr" value="1" checked> Keywords<br />
<input type="radio" name="attr" value="2"> Manufacturer Part#
</form>`

const pageBottom = `<table>
<tr><td><h1>Virtual Supplier, Inc.</h1></td></tr>
<tr><td><form method="post" action="search.cgi">
<input type="image" src="search.gif" />
<input type="text" size="15" name="value" data-target />
<input type="radio" name="attr" value="1" checked> Keywords<br />
<input type="radio" name="attr" value="2"> Manufacturer Part#
</form></td></tr>
</table>`

func testServer(t *testing.T) (*server, []byte) {
	t.Helper()
	w, err := wrapper.Train([]wrapper.Sample{
		{HTML: pageTop, Target: wrapper.TargetMarker()},
		{HTML: pageBottom, Target: wrapper.TargetMarker()},
	}, wrapper.Config{Skip: []string{"BR"}})
	if err != nil {
		t.Fatal(err)
	}
	payload, err := w.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	f := wrapper.NewFleet()
	f.Add("vs", w)
	o := obs.New()
	cache := extract.NewTieredCache(extract.NewCache(8, o), nil)
	s := newServer(f, cache, nil, o, machine.Options{}, wrapper.BatchOptions{Workers: 2})
	return s, payload
}

func do(t *testing.T, s *server, method, path string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, bytes.NewReader(body))
	rec := httptest.NewRecorder()
	s.mux().ServeHTTP(rec, req)
	return rec
}

func TestServeExtractBatch(t *testing.T) {
	s, _ := testServer(t)
	body, _ := json.Marshal(extractRequest{Docs: []wrapper.BatchDoc{
		{Key: "vs", HTML: pageTop},
		{Key: "nosuch", HTML: pageTop},
		{Key: "vs", HTML: "<html>nothing</html>"},
		{Key: "vs", HTML: pageBottom},
	}})
	rec := do(t, s, "POST", "/extract", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		Results []extractResult `json:"results"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 4 {
		t.Fatalf("%d results, want 4", len(resp.Results))
	}
	for i, r := range resp.Results {
		if r.Index != i {
			t.Errorf("results out of order: %d at %d", r.Index, i)
		}
	}
	for _, i := range []int{0, 3} {
		r := resp.Results[i]
		if !r.OK || !strings.Contains(r.Source, `type="text"`) {
			t.Errorf("result %d = %+v, want text-input extraction", i, r)
		}
	}
	if resp.Results[1].OK || !strings.Contains(resp.Results[1].Error, "no wrapper registered") {
		t.Errorf("result 1 = %+v, want unknown-key error", resp.Results[1])
	}
	if resp.Results[2].OK || resp.Results[2].Error == "" {
		t.Errorf("result 2 = %+v, want extraction failure", resp.Results[2])
	}
	if rec := do(t, s, "POST", "/extract", []byte("{")); rec.Code != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", rec.Code)
	}
}

func TestServePutWrapperAndHealthz(t *testing.T) {
	s, payload := testServer(t)
	// Register the same persisted wrapper under two new keys: the second
	// registration must hit the compiled-artifact cache.
	for _, key := range []string{"mirror1", "mirror2"} {
		rec := do(t, s, "PUT", "/wrappers/"+key, payload)
		if rec.Code != http.StatusCreated {
			t.Fatalf("PUT %s: status %d: %s", key, rec.Code, rec.Body)
		}
	}
	if got := s.fleet.Len(); got != 3 {
		t.Errorf("fleet size = %d, want 3", got)
	}
	st := s.cache.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("cache stats = %+v, want 1 miss + 1 hit", st)
	}
	body, _ := json.Marshal(extractRequest{Docs: []wrapper.BatchDoc{{Key: "mirror2", HTML: pageTop}}})
	rec := do(t, s, "POST", "/extract", body)
	var resp struct {
		Results []extractResult `json:"results"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || !resp.Results[0].OK {
		t.Fatalf("extraction via registered wrapper failed: %s", rec.Body)
	}
	if rec := do(t, s, "PUT", "/wrappers/bad", []byte("{")); rec.Code != http.StatusBadRequest {
		t.Errorf("bad payload: status %d, want 400", rec.Code)
	}

	health := do(t, s, "GET", "/healthz", nil)
	if health.Code != http.StatusOK {
		t.Fatalf("healthz: %d", health.Code)
	}
	var h struct {
		Status string `json:"status"`
		Sites  int    `json:"sites"`
		Cache  struct {
			Hits    int64   `json:"hits"`
			HitRate float64 `json:"hitRate"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(health.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Sites != 3 || h.Cache.Hits != 1 {
		t.Errorf("healthz = %+v", h)
	}
}

func TestServeMetricsExposed(t *testing.T) {
	s, _ := testServer(t)
	body, _ := json.Marshal(extractRequest{Docs: []wrapper.BatchDoc{{Key: "vs", HTML: pageTop}}})
	do(t, s, "POST", "/extract", body)
	rec := do(t, s, "GET", "/metrics", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rec.Code)
	}
	for _, want := range []string{"serve_requests_total", "wrapper_batch_docs_total"} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}
