// Command serve is the high-throughput serving path: an HTTP server that
// loads a persisted wrapper fleet through the compiled-artifact cache and
// extracts from batches of documents on a worker pool.
//
// Usage:
//
//	serve -fleet fleet.json                 # serve the fleet on :8093
//	serve -fleet fleet.json -listen :9000   # another address
//	serve -workers 16 -doc-timeout 50ms     # pool size and per-document deadline
//	serve -cache 1024 -max-states 100000    # cache capacity and compile budget
//
// Endpoints:
//
//	POST /extract        batch extraction: {"docs":[{"key":"site","html":"…"},…]}
//	                     → {"results":[{"index":0,"key":"site","ok":true,…},…]},
//	                     one result per document, in input order
//	PUT  /wrappers/{key} register or replace a site wrapper from its persisted
//	                     JSON; compilation is cached and deduplicated
//	GET  /healthz        liveness plus fleet size and cache hit rate
//	GET  /metrics        Prometheus text exposition (see obs.Handler)
//	GET  /metrics.json   combined metrics + span snapshot
//	GET  /debug/pprof/   runtime profiles
//
// The cache and the lazy automata keep expensive automaton construction off
// the request path: a wrapper's expression is compiled at most once per
// content address, concurrent cold loads are collapsed by singleflight, and
// every construction runs under the -max-states budget so no request can
// trigger the worst-case exponential determinization unbounded.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"resilex/internal/extract"
	"resilex/internal/machine"
	"resilex/internal/obs"
	"resilex/internal/wrapper"
)

func main() {
	os.Exit(run())
}

func run() int {
	fleetPath := flag.String("fleet", "", "persisted fleet JSON to serve (optional; wrappers can also be PUT at runtime)")
	listen := flag.String("listen", ":8093", "address to serve on")
	workers := flag.Int("workers", 0, "extraction worker-pool size (0 = GOMAXPROCS)")
	docTimeout := flag.Duration("doc-timeout", 0, "per-document extraction deadline (0 = none)")
	cacheCap := flag.Int("cache", 256, "compiled-artifact cache capacity")
	maxStates := flag.Int("max-states", 0, "state budget for wrapper compilation (0 = default)")
	flag.Parse()

	o := obs.New()
	cache := extract.NewCache(*cacheCap, o)
	opt := machine.Options{MaxStates: *maxStates}

	fleet := wrapper.NewFleet()
	if *fleetPath != "" {
		data, err := os.ReadFile(*fleetPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			return 1
		}
		fleet, err = wrapper.LoadFleetCached(data, opt, cache)
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			return 1
		}
	}

	s := newServer(fleet, cache, o, opt, wrapper.BatchOptions{
		Workers:    *workers,
		DocTimeout: *docTimeout,
	})
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "serve: %d wrapper(s) loaded, listening on %s\n", fleet.Len(), ln.Addr())
	srv := &http.Server{Handler: s.mux(), ReadHeaderTimeout: 10 * time.Second}
	if err := srv.Serve(ln); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		return 1
	}
	return 0
}
