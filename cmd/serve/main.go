// Command serve is the high-throughput serving path: an HTTP server that
// loads a persisted wrapper fleet through the compiled-artifact cache and
// extracts from batches of documents on a worker pool.
//
// Usage:
//
//	serve -fleet fleet.json                 # serve the fleet on :8093
//	serve -fleet fleet.json -listen :9000   # another address
//	serve -workers 16 -doc-timeout 50ms     # pool size and per-document deadline
//	serve -cache 1024 -max-states 100000    # cache capacity and compile budget
//	serve -cache-dir /var/cache/resilex     # persist artifacts + registrations
//	serve -drain 10s                        # graceful-shutdown deadline
//
// Endpoints:
//
//	POST /extract        batch extraction: {"docs":[{"key":"site","html":"…"},…]}
//	                     → {"results":[{"index":0,"key":"site","ok":true,…},…]},
//	                     one result per document, in input order
//	PUT  /wrappers/{key} register or replace a site wrapper from its persisted
//	                     JSON; compilation is cached and deduplicated, and with
//	                     -cache-dir the registration survives restarts
//	GET  /healthz        liveness plus fleet size and memory/disk cache stats
//	GET  /metrics        Prometheus text exposition (see obs.Handler)
//	GET  /metrics.json   combined metrics + span snapshot
//	GET  /debug/pprof/   runtime profiles
//
// The cache and the lazy automata keep expensive automaton construction off
// the request path: a wrapper's expression is compiled at most once per
// content address, concurrent cold loads are collapsed by singleflight, and
// every construction runs under the -max-states budget so no request can
// trigger the worst-case exponential determinization unbounded.
//
// With -cache-dir the cache gains a disk tier (memory → disk → compile):
// compiled artifacts are persisted as checksummed binary blobs under their
// content address, and every PUT wrapper payload is recorded in a registry,
// both restored at startup — so a restarted server warm-starts its whole
// fleet by decoding artifacts (no re-determinization; experiment E17
// measures the ≥5× first-request win). Corrupt or stale-version blobs are
// discarded and recompiled. On SIGINT/SIGTERM the server stops accepting,
// drains in-flight requests for at most -drain, and exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"resilex/internal/machine"
	"resilex/internal/obs"
	"resilex/internal/wrapper"
)

func main() {
	os.Exit(run())
}

func run() int {
	fleetPath := flag.String("fleet", "", "persisted fleet JSON to serve (optional; wrappers can also be PUT at runtime)")
	listen := flag.String("listen", ":8093", "address to serve on")
	workers := flag.Int("workers", 0, "extraction worker-pool size (0 = GOMAXPROCS)")
	docTimeout := flag.Duration("doc-timeout", 0, "per-document extraction deadline (0 = none)")
	cacheCap := flag.Int("cache", 256, "in-memory compiled-artifact cache capacity")
	cacheDir := flag.String("cache-dir", "", "directory for the persistent tier: compiled artifacts and PUT wrappers survive restarts (empty = memory only)")
	diskCap := flag.Int("disk-cache", -1, "on-disk compiled-artifact capacity (-1 = unbounded, 0 = store nothing)")
	maxStates := flag.Int("max-states", 0, "state budget for wrapper compilation (0 = default)")
	drain := flag.Duration("drain", 5*time.Second, "graceful-shutdown deadline for in-flight requests")
	flag.Parse()

	o := obs.New()
	opt := machine.Options{MaxStates: *maxStates}

	var fleetData []byte
	if *fleetPath != "" {
		var err error
		if fleetData, err = os.ReadFile(*fleetPath); err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			return 1
		}
	}
	s, err := buildServer(*cacheDir, *cacheCap, *diskCap, fleetData, o, opt, wrapper.BatchOptions{
		Workers:    *workers,
		DocTimeout: *docTimeout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		return 1
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "serve: %d wrapper(s) loaded, listening on %s\n", s.fleet.Len(), ln.Addr())

	// Serve until SIGINT/SIGTERM, then drain: stop accepting, let in-flight
	// requests finish (bounded by -drain), and exit 0 on a clean stop so
	// restarts under a supervisor don't flap as failures.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := &http.Server{Handler: s.mux(), ReadHeaderTimeout: 10 * time.Second}
	if err := serveUntilShutdown(ctx, srv, ln, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "serve: drained, shutting down")
	return 0
}
