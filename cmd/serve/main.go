// Command serve is the high-throughput serving path: an HTTP server that
// loads a persisted wrapper fleet through the compiled-artifact cache and
// extracts from batches of documents on a worker pool. It runs in three
// modes:
//
//	serve                                     # -mode single (default): one node
//	serve -mode shard -cache-dir /var/shard0  # one shard of a cluster
//	serve -mode router -peers http://h0:8093,http://h1:8093 -replicas 2
//
// Single/shard usage:
//
//	serve -fleet fleet.json                 # serve the fleet on :8093
//	serve -fleet fleet.json -listen :9000   # another address
//	serve -workers 16 -doc-timeout 50ms     # pool size and per-document deadline
//	serve -cache 1024 -max-states 100000    # cache capacity and compile budget
//	serve -cache-dir /var/cache/resilex     # persist artifacts + registrations
//	serve -drain 10s                        # graceful-shutdown deadline
//
// Single/shard endpoints:
//
//	POST   /extract        batch extraction: {"docs":[{"key":"site","html":"…"},…]}
//	                       → {"results":[{"index":0,"key":"site","ok":true,…},…]},
//	                       one result per document, in input order
//	POST   /extract/stream/{key}  single-document streaming extraction: the raw
//	                       page is the request body and is piped chunk by chunk
//	                       through the one-pass matcher without ever being
//	                       materialized — memory stays O(1) beyond the match
//	                       region and the warm path allocates nothing (see the
//	                       README's "Streaming extraction" walkthrough)
//	POST   /extract/tuples/{key}  single-document record extraction for a key
//	                       registered with a tuple (k-ary) wrapper: the raw page
//	                       is the request body, the response enumerates every
//	                       extraction vector — one k-slot record per vector, in
//	                       document order — computed by the one-pass multi-split
//	                       spanner; a single-pivot key answers 422 (counted under
//	                       serve_rejected_total{reason="arity"}), an unknown key
//	                       404 (see the README's "Extracting records" walkthrough)
//	PUT    /wrappers/{key} register or replace a site wrapper from its persisted
//	                       JSON; compilation is cached and deduplicated, and with
//	                       -cache-dir the registration survives restarts
//	DELETE /wrappers/{key} remove a site wrapper; with -cache-dir the deletion
//	                       persists as a versioned tombstone, so restarts don't
//	                       resurrect it (a later re-PUT does, at a higher version)
//	PUT    /wrappers/{key}/canary    stage a candidate version on a slice of the
//	                                 key's traffic (-canary-fraction, default 0.25)
//	POST   /wrappers/{key}/promote   make the staged canary active (?version=N
//	                                 guards against promoting an unseen canary)
//	POST   /wrappers/{key}/rollback  discard the staged canary, or revert the
//	                                 most recent promotion to the prior version
//	GET    /wrappers/{key}/versions  the key's version state machine and canary
//	                                 observation-window statistics
//	POST   /cluster/apply  replicated wrapper operation from a cluster router
//	                       (codec-framed, checksummed; shard mode's write path)
//	GET    /healthz        liveness plus fleet size and memory/disk cache stats
//	GET    /metrics        Prometheus text exposition (see obs.Handler);
//	                       OpenMetrics with trace-ID exemplars when requested
//	                       via Accept: application/openmetrics-text
//	GET    /metrics.json   combined metrics + span snapshot
//	GET    /debug/traces   recent request traces (one entry per trace ID)
//	GET    /debug/traces/{id}  the assembled span tree of one request — on a
//	                       router this merges the peers' halves of the trace
//	GET    /debug/pprof/   runtime profiles
//
// Every request is traced: the server joins a trace propagated in the
// X-Resilex-Trace header or mints a fresh trace ID at ingress, echoes it in
// the response header, and keeps the request's spans retrievable at
// GET /debug/traces/{id}. -trace-export appends every traced span to a JSONL
// file as it completes; -wide-event-sample N emits one wide request event
// (trace ID, doc bytes, serving rung, duration, result count) to stderr as
// JSON for every Nth request (0 disables).
//
// Router mode serves the same extraction and wrapper routes but owns no
// fleet: a consistent-hash ring over -peers places every wrapper key on
// -replicas shards, POST /extract proxies to the key's owner (failing over
// to the next replica on error or timeout, hedging stragglers after
// -hedge-after), and wrapper PUTs/DELETEs fan out to every owner. A
// background health loop probes each peer's /healthz every -health-interval
// and routes around nodes that are down. See internal/cluster.
//
// The cache and the lazy automata keep expensive automaton construction off
// the request path: a wrapper's expression is compiled at most once per
// content address, concurrent cold loads are collapsed by singleflight, and
// every construction runs under the -max-states budget so no request can
// trigger the worst-case exponential determinization unbounded.
//
// With -cache-dir the cache gains a disk tier (memory → disk → compile):
// compiled artifacts are persisted as checksummed binary blobs under their
// content address, and every PUT wrapper payload is recorded in a registry,
// both restored at startup — so a restarted server warm-starts its whole
// fleet by decoding artifacts (no re-determinization; experiment E17
// measures the ≥5× first-request win). Corrupt or stale-version blobs are
// discarded and recompiled. On SIGINT/SIGTERM the server stops accepting,
// drains in-flight requests for at most -drain, and exits 0.
//
// With -sample-dir the continuous-refresh pipeline runs in-process: a
// background drift watcher (internal/refresh) reads live page samples from
// <dir>/<key>/*.html every -refresh-interval, re-induces a candidate
// wrapper when the active version starts missing them, canary-deploys it on
// -canary-fraction of the key's traffic, and promotes or rolls back on the
// observation window's verdict. Registry versions, canary state and rollout
// outcomes all persist under -cache-dir and replicate through
// POST /cluster/apply in shard mode. Experiment E19 measures the pipeline;
// scripts/refresh_smoke.sh drives it against real processes.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"resilex/internal/cluster"
	"resilex/internal/machine"
	"resilex/internal/obs"
	"resilex/internal/refresh"
	"resilex/internal/serve"
	"resilex/internal/wrapper"
)

func main() {
	os.Exit(run())
}

func run() int {
	mode := flag.String("mode", "single", "single (standalone node), shard (cluster member), or router (cluster front-end)")
	fleetPath := flag.String("fleet", "", "persisted fleet JSON to serve (optional; wrappers can also be PUT at runtime)")
	listen := flag.String("listen", ":8093", "address to serve on")
	workers := flag.Int("workers", 0, "extraction worker-pool size (0 = GOMAXPROCS)")
	docTimeout := flag.Duration("doc-timeout", 0, "per-document extraction deadline (0 = none)")
	cacheCap := flag.Int("cache", 256, "in-memory compiled-artifact cache capacity")
	cacheDir := flag.String("cache-dir", "", "directory for the persistent tier: compiled artifacts and PUT wrappers survive restarts (empty = memory only)")
	diskCap := flag.Int("disk-cache", -1, "on-disk compiled-artifact capacity (-1 = unbounded, 0 = store nothing)")
	maxStates := flag.Int("max-states", 0, "state budget for wrapper compilation (0 = default)")
	maxBody := flag.Int64("max-body", 0, "request-body size limit in bytes (0 = 64 MiB)")
	drain := flag.Duration("drain", 5*time.Second, "graceful-shutdown deadline for in-flight requests")
	traceExport := flag.String("trace-export", "", "append every traced span to this JSONL file as it completes (empty = off)")
	wideEventSample := flag.Int("wide-event-sample", 0, "emit one wide request event to stderr as JSON per N requests (0 = off, 1 = every request)")
	// Refresh-pipeline flags (single/shard modes).
	canaryFraction := flag.Float64("canary-fraction", 0, "fraction of a key's traffic routed to its staged canary version (0 = default 0.25)")
	sampleDir := flag.String("sample-dir", "", "spool directory of live page samples (<dir>/<key>/*.html); enables the background drift watcher")
	refreshInterval := flag.Duration("refresh-interval", 30*time.Second, "drift-watch period when -sample-dir is set")
	refreshMinSamples := flag.Int("refresh-min-samples", 0, "smallest spool sample set worth judging drift on (0 = default 3)")
	// Router-mode flags.
	peers := flag.String("peers", "", "router: comma-separated shard base URLs (e.g. http://h0:8093,http://h1:8093)")
	replicas := flag.Int("replicas", 0, "router: owners per wrapper key (0 = default 2, capped at peer count)")
	vnodes := flag.Int("vnodes", 0, "router: virtual nodes per peer on the hash ring (0 = default 128)")
	hedgeAfter := flag.Duration("hedge-after", 0, "router: hedge a straggling extract to the next replica after this delay (0 = no hedging)")
	proxyTimeout := flag.Duration("proxy-timeout", 0, "router: per-attempt proxy deadline (0 = default 5s)")
	healthInterval := flag.Duration("health-interval", time.Second, "router: shard health-poll period")
	flag.Parse()

	o := obs.New()
	if *traceExport != "" {
		f, err := os.OpenFile(*traceExport, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			return 1
		}
		defer f.Close()
		o.Traces.SetExport(f)
		fmt.Fprintf(os.Stderr, "serve: exporting traced spans to %s\n", *traceExport)
	}
	if *wideEventSample > 0 {
		lg := slog.New(slog.NewJSONHandler(os.Stderr, nil))
		o.Log = obs.FuncLogger(func(name string, kv ...any) { lg.Info(name, kv...) })
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var handler http.Handler
	switch *mode {
	case "single", "shard":
		var fleetData []byte
		if *fleetPath != "" {
			var err error
			if fleetData, err = os.ReadFile(*fleetPath); err != nil {
				fmt.Fprintln(os.Stderr, "serve:", err)
				return 1
			}
		}
		s, err := serve.New(serve.Config{
			CacheDir:     *cacheDir,
			CacheCap:     *cacheCap,
			DiskCap:      *diskCap,
			FleetData:    fleetData,
			MaxBodyBytes: *maxBody,
			Observer:     o,
			Options:      machine.Options{MaxStates: *maxStates},
			Batch: wrapper.BatchOptions{
				Workers:    *workers,
				DocTimeout: *docTimeout,
			},
			CanaryFraction:  *canaryFraction,
			WideEventSample: *wideEventSample,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			return 1
		}
		if *sampleDir != "" {
			ctrl, err := refresh.New(s, refresh.Config{
				Sampler:    refresh.NewDirSampler(*sampleDir),
				Interval:   *refreshInterval,
				MinSamples: *refreshMinSamples,
				Options:    machine.Options{MaxStates: *maxStates},
				Observer:   o,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "serve:", err)
				return 1
			}
			go ctrl.Run(ctx)
			fmt.Fprintf(os.Stderr, "serve: drift watcher sampling %s every %s\n", *sampleDir, *refreshInterval)
		}
		fmt.Fprintf(os.Stderr, "serve: %s mode, %d wrapper(s) loaded\n", *mode, s.Fleet().Len())
		handler = s.Mux()
	case "router":
		rt, err := cluster.NewRouter(cluster.RouterConfig{
			Peers:        strings.Split(*peers, ","),
			Replicas:     *replicas,
			VirtualNodes: *vnodes,
			HedgeAfter:   *hedgeAfter,
			ProxyTimeout: *proxyTimeout,
			MaxBodyBytes: *maxBody,
			Membership:   cluster.MembershipConfig{Interval: *healthInterval},
			Observer:     o,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			return 1
		}
		go rt.Run(ctx)
		fmt.Fprintf(os.Stderr, "serve: router mode, %d peer(s), %d replica(s) per key\n",
			rt.Ring().Len(), rt.Replicas())
		handler = rt.Mux()
	default:
		fmt.Fprintf(os.Stderr, "serve: unknown -mode %q (want single, shard, or router)\n", *mode)
		return 2
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "serve: listening on %s\n", ln.Addr())

	// Serve until SIGINT/SIGTERM, then drain: stop accepting, let in-flight
	// requests finish (bounded by -drain), and exit 0 on a clean stop so
	// restarts under a supervisor don't flap as failures.
	srv := &http.Server{Handler: handler, ReadHeaderTimeout: 10 * time.Second}
	if err := serve.ServeUntilShutdown(ctx, srv, ln, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "serve: drained, shutting down")
	return 0
}
