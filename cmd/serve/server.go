package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"resilex/internal/extract"
	"resilex/internal/machine"
	"resilex/internal/obs"
	"resilex/internal/wrapper"
)

// maxBodyBytes bounds every request body: batches beyond this are a client
// error, not an allocation.
const maxBodyBytes = 64 << 20

// server is the HTTP serving path: a fleet of compiled wrappers, the shared
// compiled-artifact cache behind wrapper registration, and the observer all
// request work reports into. It is constructed once and shared by every
// request goroutine; Fleet and Cache are concurrency-safe, the rest is
// read-only.
type server struct {
	fleet *wrapper.Fleet
	cache *extract.Cache
	obs   *obs.Observer
	opt   machine.Options
	batch wrapper.BatchOptions
}

func newServer(f *wrapper.Fleet, cache *extract.Cache, o *obs.Observer, opt machine.Options, batch wrapper.BatchOptions) *server {
	return &server{fleet: f, cache: cache, obs: o, opt: opt, batch: batch}
}

// mux mounts the serving routes on top of the observability endpoints
// (/metrics, /metrics.json, /debug/pprof — see obs.Handler), so one -listen
// address serves both traffic and telemetry.
func (s *server) mux() *http.ServeMux {
	mux := obs.Handler(s.obs)
	mux.HandleFunc("POST /extract", s.handleExtract)
	mux.HandleFunc("PUT /wrappers/{key}", s.handlePutWrapper)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// extractRequest is the POST /extract body: a batch of documents, each
// naming the site wrapper to run.
type extractRequest struct {
	Docs []wrapper.BatchDoc `json:"docs"`
}

// extractResult is one element of the POST /extract response, in input
// order. OK distinguishes extraction success; on failure Error carries the
// classified cause and the region fields are absent.
type extractResult struct {
	Index      int    `json:"index"`
	Key        string `json:"key"`
	OK         bool   `json:"ok"`
	Error      string `json:"error,omitempty"`
	TokenIndex int    `json:"tokenIndex,omitempty"`
	Start      int    `json:"start,omitempty"`
	End        int    `json:"end,omitempty"`
	Source     string `json:"source,omitempty"`
}

func (s *server) handleExtract(w http.ResponseWriter, r *http.Request) {
	s.obs.Counter("serve_requests_total").Inc()
	var req extractRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	ctx := obs.NewContext(r.Context(), s.obs)
	results := s.fleet.ExtractBatch(ctx, req.Docs, s.batch)
	out := struct {
		Results []extractResult `json:"results"`
	}{Results: make([]extractResult, len(results))}
	for i, res := range results {
		er := extractResult{Index: res.Index, Key: res.Key}
		if res.Err != nil {
			er.Error = res.Err.Error()
		} else {
			er.OK = true
			er.TokenIndex = res.Region.TokenIndex
			er.Start = res.Region.Span.Start
			er.End = res.Region.Span.End
			er.Source = res.Region.Source
		}
		out.Results[i] = er
	}
	writeJSON(w, http.StatusOK, out)
}

// handlePutWrapper registers (or replaces) a site wrapper from its persisted
// JSON. Compilation goes through the shared cache, so re-registering a known
// expression — or registering the same wrapper under many keys — costs a
// lookup, and a deploy that PUTs a whole fleet compiles each distinct
// expression once even under concurrency.
func (s *server) handlePutWrapper(w http.ResponseWriter, r *http.Request) {
	s.obs.Counter("serve_requests_total").Inc()
	key := r.PathValue("key")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	wr, err := wrapper.LoadCached(body, s.opt, s.cache)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, machine.ErrBudget) || errors.Is(err, machine.ErrDeadline) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err)
		return
	}
	s.fleet.Add(key, wr)
	writeJSON(w, http.StatusCreated, map[string]any{"key": key, "sites": s.fleet.Len()})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.cache.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"sites":  s.fleet.Len(),
		"cache": map[string]any{
			"entries":   st.Entries,
			"hits":      st.Hits,
			"misses":    st.Misses,
			"evictions": st.Evictions,
			"hitRate":   st.HitRate(),
		},
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
