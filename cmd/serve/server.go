package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"resilex/internal/extract"
	"resilex/internal/machine"
	"resilex/internal/obs"
	"resilex/internal/wrapper"
)

// maxBodyBytes bounds every request body: batches beyond this are a client
// error, not an allocation.
const maxBodyBytes = 64 << 20

// server is the HTTP serving path: a fleet of compiled wrappers, the tiered
// compiled-artifact cache behind wrapper registration (memory always, disk
// when -cache-dir is set), the registry that persists registrations across
// restarts, and the observer all request work reports into. It is
// constructed once and shared by every request goroutine; Fleet, cache and
// registry are concurrency-safe, the rest is read-only.
type server struct {
	fleet    *wrapper.Fleet
	cache    *extract.TieredCache
	registry *wrapperRegistry // nil without -cache-dir
	obs      *obs.Observer
	opt      machine.Options
	batch    wrapper.BatchOptions
}

func newServer(f *wrapper.Fleet, cache *extract.TieredCache, reg *wrapperRegistry, o *obs.Observer, opt machine.Options, batch wrapper.BatchOptions) *server {
	return &server{fleet: f, cache: cache, registry: reg, obs: o, opt: opt, batch: batch}
}

// buildServer assembles the serving stack. With cacheDir == "" the server is
// memory-only, exactly as before persistence existed. With a directory it
// gains the two persistent pieces — compiled artifacts under
// cacheDir/artifacts (diskCap entries; negative = unbounded) and the wrapper
// registry under cacheDir/wrappers — and restores every previously
// registered wrapper into the fleet before taking traffic, warm-starting
// from disk instead of recompiling. fleetData, when non-nil, is a persisted
// fleet loaded first, so registrations PUT at runtime (restored from the
// registry) override same-key entries from the deploy file.
func buildServer(cacheDir string, cacheCap, diskCap int, fleetData []byte, o *obs.Observer, opt machine.Options, batch wrapper.BatchOptions) (*server, error) {
	mem := extract.NewCache(cacheCap, o)
	var disk *extract.DiskCache
	var reg *wrapperRegistry
	if cacheDir != "" {
		var err error
		if disk, err = extract.NewDiskCache(filepath.Join(cacheDir, "artifacts"), diskCap, o); err != nil {
			return nil, err
		}
		if reg, err = newWrapperRegistry(filepath.Join(cacheDir, "wrappers")); err != nil {
			return nil, err
		}
	}
	cache := extract.NewTieredCache(mem, disk)
	fleet := wrapper.NewFleet()
	if fleetData != nil {
		var err error
		if fleet, err = wrapper.LoadFleetCached(fleetData, opt, cache); err != nil {
			return nil, err
		}
	}
	restored, skipped := reg.restore(fleet, opt, cache)
	if restored+skipped > 0 {
		fmt.Fprintf(os.Stderr, "serve: restored %d wrapper(s) from %s (%d skipped)\n", restored, cacheDir, skipped)
	}
	return newServer(fleet, cache, reg, o, opt, batch), nil
}

// serveUntilShutdown serves on ln until ctx is canceled, then drains
// in-flight requests for at most drain before forcing connections closed.
// It returns nil on a clean drain, the drain context's error if the deadline
// forced the stop, or the listener's error if serving failed before any
// shutdown was requested.
func serveUntilShutdown(ctx context.Context, srv *http.Server, ln net.Listener, drain time.Duration) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err // listener died on its own; nothing left to drain
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err := srv.Shutdown(sctx)
	if serr := <-errc; serr != nil && !errors.Is(serr, http.ErrServerClosed) {
		return serr
	}
	return err
}

// mux mounts the serving routes on top of the observability endpoints
// (/metrics, /metrics.json, /debug/pprof — see obs.Handler), so one -listen
// address serves both traffic and telemetry.
func (s *server) mux() *http.ServeMux {
	mux := obs.Handler(s.obs)
	mux.HandleFunc("POST /extract", s.handleExtract)
	mux.HandleFunc("PUT /wrappers/{key}", s.handlePutWrapper)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// extractRequest is the POST /extract body: a batch of documents, each
// naming the site wrapper to run.
type extractRequest struct {
	Docs []wrapper.BatchDoc `json:"docs"`
}

// extractResult is one element of the POST /extract response, in input
// order. OK distinguishes extraction success; on failure Error carries the
// classified cause and the region fields are absent.
type extractResult struct {
	Index      int    `json:"index"`
	Key        string `json:"key"`
	OK         bool   `json:"ok"`
	Error      string `json:"error,omitempty"`
	TokenIndex int    `json:"tokenIndex,omitempty"`
	Start      int    `json:"start,omitempty"`
	End        int    `json:"end,omitempty"`
	Source     string `json:"source,omitempty"`
}

func (s *server) handleExtract(w http.ResponseWriter, r *http.Request) {
	s.obs.Counter("serve_requests_total").Inc()
	var req extractRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	ctx := obs.NewContext(r.Context(), s.obs)
	results := s.fleet.ExtractBatch(ctx, req.Docs, s.batch)
	out := struct {
		Results []extractResult `json:"results"`
	}{Results: make([]extractResult, len(results))}
	for i, res := range results {
		er := extractResult{Index: res.Index, Key: res.Key}
		if res.Err != nil {
			er.Error = res.Err.Error()
		} else {
			er.OK = true
			er.TokenIndex = res.Region.TokenIndex
			er.Start = res.Region.Span.Start
			er.End = res.Region.Span.End
			er.Source = res.Region.Source
		}
		out.Results[i] = er
	}
	writeJSON(w, http.StatusOK, out)
}

// handlePutWrapper registers (or replaces) a site wrapper from its persisted
// JSON. Compilation goes through the shared cache, so re-registering a known
// expression — or registering the same wrapper under many keys — costs a
// lookup, and a deploy that PUTs a whole fleet compiles each distinct
// expression once even under concurrency.
func (s *server) handlePutWrapper(w http.ResponseWriter, r *http.Request) {
	s.obs.Counter("serve_requests_total").Inc()
	key := r.PathValue("key")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	wr, err := wrapper.LoadCached(body, s.opt, s.cache)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, machine.ErrBudget) || errors.Is(err, machine.ErrDeadline) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err)
		return
	}
	s.fleet.Add(key, wr)
	resp := map[string]any{"key": key, "sites": s.fleet.Len()}
	if s.registry != nil {
		// The registration is live either way; persisted reports whether it
		// will also survive a restart, so a deploy can alarm on false.
		resp["persisted"] = s.registry.save(key, body) == nil
	}
	writeJSON(w, http.StatusCreated, resp)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.cache.Stats()
	body := map[string]any{
		"status": "ok",
		"sites":  s.fleet.Len(),
		"cache": map[string]any{
			"entries":   st.Entries,
			"hits":      st.Hits,
			"misses":    st.Misses,
			"evictions": st.Evictions,
			"hitRate":   st.HitRate(),
		},
	}
	if disk := s.cache.Disk(); disk != nil {
		ds := disk.Stats()
		body["diskCache"] = map[string]any{
			"dir":       disk.Dir(),
			"entries":   ds.Entries,
			"hits":      ds.Hits,
			"misses":    ds.Misses,
			"evictions": ds.Evictions,
			"corrupt":   ds.Corrupt,
		}
	}
	writeJSON(w, http.StatusOK, body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
