// Command rexc is the extraction-expression compiler and checker: it
// decides ambiguity and maximality, explains failures with witnesses,
// maximizes expressions with the paper's algorithms, and runs expressions
// over token strings.
//
// Usage:
//
//	rexc check    [-sigma "a b c"] 'q p <p> .*'
//	rexc learn    'P FORM <INPUT> /FORM' 'DIV FORM <INPUT> /FORM' …
//	rexc maximize [-sigma "a b c"] [-algo auto|left|right|pivot|pivot-right] 'q p <p> .*'
//	rexc pivots   [-sigma "a b c"] 'EXPR'
//	rexc extract  [-sigma "a b c"] 'EXPR' 'tok tok tok ...'
//	rexc simplify 'REGEX'
//	rexc tuple    'E0 <p1> E1 <p2> E2' 'tok tok ...'
//	rexc dot      'EXPR'                # Graphviz for both component DFAs
//
// Expressions use the concrete syntax of the resilex library: whitespace-
// separated token identifiers, postfix * + ?, infix | & -, '.' for any
// symbol, [a b] and [^ a] classes, #eps, #empty, and a single marked
// symbol <p>.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"resilex"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	sigmaFlag := fs.String("sigma", "", "extra alphabet symbols (space separated) beyond those mentioned")
	budget := fs.Int("budget", 0, "state budget for automaton constructions (0 = default)")
	algo := fs.String("algo", "auto", "maximization algorithm: auto, left, right, pivot or pivot-right")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	rest := fs.Args()

	tab := resilex.NewTable()
	sigma := resilex.Alphabet{}
	if *sigmaFlag != "" {
		syms, err := resilex.ParseTokens(*sigmaFlag, tab)
		if err != nil {
			fatal(err)
		}
		sigma = resilex.NewAlphabet(syms...)
	}
	opt := resilex.Options{MaxStates: *budget}

	parse := func(src string) resilex.Expr {
		x, err := resilex.ParseExpr(src, tab, sigma, opt)
		if err != nil {
			fatal(err)
		}
		return x
	}

	switch cmd {
	case "check":
		need(rest, 1)
		check(parse(rest[0]), tab)
	case "maximize":
		need(rest, 1)
		maximize(parse(rest[0]), tab, *algo)
	case "pivots":
		need(rest, 1)
		pivots(parse(rest[0]), tab)
	case "extract":
		need(rest, 2)
		// Tokenize the document first so its tags join Σ — otherwise a page
		// tag the expression never mentions would make it unparseable.
		doc, err := resilex.ParseTokens(rest[1], tab)
		if err != nil {
			fatal(err)
		}
		sigma = sigma.Union(resilex.NewAlphabet(doc...))
		runExtract(parse(rest[0]), doc, tab)
	case "simplify":
		need(rest, 1)
		n, err := resilex.ParseRegex(rest[0], tab, sigma)
		if err != nil {
			fatal(err)
		}
		s := resilex.SimplifyRegex(n)
		fmt.Printf("%s\n(%d → %d AST nodes)\n", resilex.PrintRegex(s, tab), n.Size(), s.Size())
	case "learn":
		if len(rest) == 0 {
			usage()
			os.Exit(2)
		}
		runLearn(rest, tab, sigma, opt)
	case "dot":
		need(rest, 1)
		x := parse(rest[0])
		fmt.Print(x.Left().DFA().DOT(tab, "E1"))
		fmt.Print(x.Right().DFA().DOT(tab, "E2"))
	case "tuple":
		need(rest, 2)
		doc, err := resilex.ParseTokens(rest[1], tab)
		if err != nil {
			fatal(err)
		}
		sigma = sigma.Union(resilex.NewAlphabet(doc...))
		tp, err := resilex.ParseTuple(rest[0], tab, sigma, opt)
		if err != nil {
			fatal(err)
		}
		runTuple(tp, doc, tab)
	default:
		usage()
		os.Exit(2)
	}
}

// runLearn induces and maximizes an expression from marked example
// documents, each given as a token string with the target in angle
// brackets: rexc learn 'P FORM INPUT <INPUT> /FORM' 'DIV FORM INPUT <INPUT> /FORM'.
func runLearn(docs []string, tab *resilex.Table, sigma resilex.Alphabet, opt resilex.Options) {
	var examples []resilex.Example
	for i, src := range docs {
		doc, target, err := parseMarkedDoc(src, tab)
		if err != nil {
			fatal(fmt.Errorf("example %d: %w", i, err))
		}
		examples = append(examples, resilex.Example{Doc: doc, Target: target})
		sigma = sigma.Union(resilex.NewAlphabet(doc...))
	}
	induced, err := resilex.Induce(examples, sigma, opt)
	if err != nil {
		fatal(err)
	}
	fmt.Println("induced:  ", induced.String(tab))
	maxed, err := resilex.Maximize(induced)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rexc: maximization not applicable (%v); induced expression is final\n", err)
		return
	}
	fmt.Println("maximized:", maxed.String(tab))
}

// parseMarkedDoc reads a token string with exactly one <token> mark.
func parseMarkedDoc(src string, tab *resilex.Table) ([]resilex.Symbol, int, error) {
	fields := strings.Fields(src)
	var doc []resilex.Symbol
	target := -1
	for _, f := range fields {
		marked := false
		if strings.HasPrefix(f, "<") && strings.HasSuffix(f, ">") && len(f) > 2 {
			f = f[1 : len(f)-1]
			marked = true
		}
		syms, err := resilex.ParseTokens(f, tab)
		if err != nil || len(syms) != 1 {
			return nil, 0, fmt.Errorf("bad token %q", f)
		}
		if marked {
			if target >= 0 {
				return nil, 0, fmt.Errorf("more than one marked token")
			}
			target = len(doc)
		}
		doc = append(doc, syms[0])
	}
	if target < 0 {
		return nil, 0, fmt.Errorf("no marked token (wrap the target in <...>)")
	}
	return doc, target, nil
}

func runTuple(tp *resilex.Tuple, doc []resilex.Symbol, tab *resilex.Table) {
	unamb, err := tp.Unambiguous()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("unambiguous: %v\n", unamb)
	v, ok, err := tp.Extract(doc)
	if err != nil {
		fatal(err)
	}
	if !ok {
		fmt.Println("no match")
		os.Exit(1)
	}
	fmt.Printf("extracted vector %v\n", v)
	for _, pos := range v {
		fmt.Printf("  %s\n", markAt(doc, pos, tab))
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: rexc {check|learn|maximize|pivots|extract|simplify|tuple|dot} [flags] EXPR [DOC]")
}

func need(rest []string, n int) {
	if len(rest) != n {
		usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rexc:", err)
	os.Exit(1)
}

func check(x resilex.Expr, tab *resilex.Table) {
	fmt.Printf("expression: %s\n", x.String(tab))
	fmt.Printf("sigma:      %s\n", x.Sigma().Format(tab))
	d, err := x.Explain()
	if err != nil {
		fatal(err)
	}
	fmt.Print(d.Format(tab))
}

func maximize(x resilex.Expr, tab *resilex.Table, algo string) {
	var out resilex.Expr
	var err error
	switch algo {
	case "auto":
		out, err = resilex.Maximize(x)
	case "left":
		out, err = resilex.LeftFilter(x)
	case "right":
		out, err = resilex.RightFilter(x)
	case "pivot":
		out, err = resilex.Pivot(x)
	case "pivot-right":
		out, err = resilex.PivotRight(x)
	default:
		fatal(fmt.Errorf("unknown algorithm %q", algo))
	}
	if err != nil {
		switch {
		case errors.Is(err, resilex.ErrAmbiguous):
			fmt.Fprintln(os.Stderr, "rexc: the expression is ambiguous; maximality is undefined")
		case errors.Is(err, resilex.ErrUnbounded):
			fmt.Fprintln(os.Stderr, "rexc: the prefix matches unboundedly many marked symbols; try -algo pivot")
		}
		fatal(err)
	}
	fmt.Println(out.String(tab))
}

func pivots(x resilex.Expr, tab *resilex.Table) {
	dec, err := resilex.PivotDecomposition(x)
	if err != nil {
		fatal(err)
	}
	fmt.Println(dec.String(tab))
}

func runExtract(x resilex.Expr, doc []resilex.Symbol, tab *resilex.Table) {
	splits := x.Splits(doc)
	switch len(splits) {
	case 0:
		fmt.Println("no match")
		os.Exit(1)
	case 1:
		fmt.Printf("extracted token %d: %s\n", splits[0], tab.Name(doc[splits[0]]))
		fmt.Printf("  %s\n", markAt(doc, splits[0], tab))
	default:
		fmt.Printf("AMBIGUOUS: %d extraction positions %v\n", len(splits), splits)
		for _, p := range splits {
			fmt.Printf("  %s\n", markAt(doc, p, tab))
		}
		os.Exit(1)
	}
}

func markAt(doc []resilex.Symbol, at int, tab *resilex.Table) string {
	var b strings.Builder
	for i, s := range doc {
		if i > 0 {
			b.WriteByte(' ')
		}
		if i == at {
			b.WriteString("<" + tab.Name(s) + ">")
		} else {
			b.WriteString(tab.Name(s))
		}
	}
	return b.String()
}
