// Command resilience regenerates the experiment tables of EXPERIMENTS.md:
// the empirical validation of every formal claim in "Computational Aspects
// of Resilient Data Extraction from Semistructured Sources" (PODS 2000).
//
// Usage:
//
//	resilience                # run every experiment at the standard scale
//	resilience -quick         # smaller sweeps (seconds, for CI)
//	resilience -run E4,E8     # a subset
//	resilience -timeout 30s   # abandon any experiment that exceeds the deadline
//	resilience -max-states N  # cap automaton construction per experiment
//	resilience -metrics       # record phase counters; dump a snapshot on exit
//	resilience -bench-dir d   # write each table (with phase counters) to d/BENCH_<ID>.json
//	resilience -listen :8080  # serve /metrics, /metrics.json and /debug/pprof while running
//
// With -metrics (or -trace or -listen) every automaton construction runs
// under an observer: subset states, minimization passes, deadline polls and
// per-phase wall time land in a metrics registry, per-experiment deltas land
// in the emitted tables, and the E15 supervisor experiment reports per-site
// rung/breaker telemetry from the same registry.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"resilex/internal/bench"
	"resilex/internal/machine"
	"resilex/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() int {
	quick := flag.Bool("quick", false, "run reduced sweeps")
	runIDs := flag.String("run", "", "comma-separated experiment ids (default: all)")
	seed := flag.Int64("seed", 1, "random seed for generated workloads")
	asJSON := flag.Bool("json", false, "emit tables as JSON instead of text")
	maxStates := flag.Int("max-states", 0, "state budget for automaton constructions (0 = default)")
	timeout := flag.Duration("timeout", 0, "deadline per experiment; exceeded experiments are reported and skipped (0 = none)")
	metrics := flag.Bool("metrics", false, "observe all constructions and dump the metric snapshot on exit")
	metricsFormat := flag.String("metrics-format", "json", "snapshot format: json (metrics + spans) or prometheus (text exposition)")
	metricsOut := flag.String("metrics-out", "", "write the metric snapshot to this file instead of stderr")
	trace := flag.Bool("trace", false, "dump the span tree of the run to stderr on exit")
	listen := flag.String("listen", "", "serve /metrics, /metrics.json and /debug/pprof on this address for the duration of the run")
	benchDir := flag.String("bench-dir", "", "write each experiment table (with phase counters) to <dir>/BENCH_<ID>.json")
	flag.Parse()

	// Any observability surface turns the observer on; -bench-dir needs it
	// for the phase counters it writes.
	var o *obs.Observer
	if *metrics || *trace || *listen != "" || *benchDir != "" {
		o = obs.New()
	}
	defer dump(o, *metrics, *trace, *metricsFormat, *metricsOut)
	if *listen != "" {
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "resilience:", err)
			return 1
		}
		defer ln.Close()
		fmt.Fprintf(os.Stderr, "resilience: serving /metrics, /metrics.json, /debug/pprof on %s\n", ln.Addr())
		go http.Serve(ln, obs.Handler(o))
	}
	if *benchDir != "" {
		if err := os.MkdirAll(*benchDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "resilience:", err)
			return 1
		}
	}

	type experiment struct {
		id string
		fn func() bench.Table
	}
	trials := 20
	if *quick {
		trials = 5
	}
	sizes := []int{4, 8, 16, 32, 64, 128}
	e4ns := []int{2, 4, 6, 8, 10, 12, 14, 16}
	e6ns := []int{0, 1, 2, 4, 8, 12, 16}
	e7ks := []int{1, 2, 3, 4, 5, 6}
	edits := []int{1, 2, 4, 6, 8}
	depths := []int{2, 3, 4, 5, 6}
	perEdit := 500
	e16docs := 2000
	e17trials := 9
	e18keys := 32
	e18window := 600 * time.Millisecond
	e18service := 10 * time.Millisecond
	e19reqs := 30
	e21iters := 50
	e22iters := 50
	if *quick {
		e16docs = 300
		e21iters = 10
		e22iters = 10
		e17trials = 3
		e18keys = 12
		e18window = 250 * time.Millisecond
		e18service = 5 * time.Millisecond
		e19reqs = 10
		sizes = sizes[:4]
		e4ns = e4ns[:5]
		e6ns = e6ns[:5]
		e7ks = e7ks[:4]
		edits = edits[:3]
		depths = depths[:4]
		perEdit = 100
	}
	experiments := []experiment{
		{"E3", func() bench.Table { return bench.E3Ambiguity(sizes, trials, *seed) }},
		{"E4", func() bench.Table { return bench.E4Maximality(e4ns) }},
		{"E5", func() bench.Table { return bench.E5Nonunique() }},
		{"E6", func() bench.Table { return bench.E6LeftFilter(e6ns) }},
		{"E7", func() bench.Table { return bench.E7Pivot(e7ks) }},
		{"E8", func() bench.Table { return bench.E8Resilience(edits, perEdit, *seed) }},
		{"E8H", func() bench.Table { return bench.E8HTML(3, perEdit/2, *seed) }},
		{"E10", func() bench.Table { return bench.E10Factoring(depths, trials, *seed) }},
		{"E11", func() bench.Table { return bench.E11MiddleRow(2, []int{3, 5, 7, 9, 11}) }},
		{"E13", func() bench.Table { return bench.E13Tuple(perEdit, *seed) }},
		{"E14", func() bench.Table { return bench.E14Alphabet([]int{2, 3, 4, 6}, perEdit/2, *seed) }},
		{"E15", func() bench.Table { return bench.E15Supervisor() }},
		{"E16", func() bench.Table { return bench.E16Throughput(e16docs, 0, *seed) }},
		{"E17", func() bench.Table { return bench.E17Persistence("", e17trials, *seed) }},
		{"E18", func() bench.Table { return bench.E18Cluster(e18keys, e18window, e18service) }},
		{"E19", func() bench.Table { return bench.E19Drift(e19reqs, 4, *seed) }},
		{"E20", func() bench.Table { return bench.E20TracingOverhead(e16docs*4, 0, *seed) }},
		{"E21", func() bench.Table { return bench.E21Streaming(e21iters) }},
		{"E22", func() bench.Table { return bench.E22Spanner(e22iters) }},
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*runIDs, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToUpper(id)] = true
		}
	}
	// runBounded runs one experiment under -timeout/-max-states with the
	// observer threaded into every construction context, and attaches the
	// experiment's phase-counter delta to its table. Workload generators
	// panic on construction errors they consider impossible; a deadline or
	// tight budget makes those reachable, so they are recovered here and
	// reported as an abandoned experiment instead of a crash.
	runBounded := func(fn func() bench.Table) (table bench.Table, err error) {
		opts := machine.Options{MaxStates: *maxStates}
		ctx := context.Background()
		if o != nil {
			ctx = obs.NewContext(ctx, o)
		}
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		if *timeout > 0 || o != nil {
			opts = opts.WithContext(ctx)
		}
		bench.DefaultOptions = opts
		bench.DefaultObserver = o
		var before obs.Snapshot
		if o != nil {
			before = o.Metrics.Snapshot()
		}
		defer func() {
			bench.DefaultOptions = machine.Options{}
			bench.DefaultObserver = nil
			if r := recover(); r != nil {
				err = fmt.Errorf("abandoned: %v", r)
			} else if o != nil {
				table.Phases = bench.PhaseDelta(before, o.Metrics.Snapshot())
			}
		}()
		return fn(), nil
	}

	ran := 0
	failed := 0
	enc := json.NewEncoder(os.Stdout)
	for _, ex := range experiments {
		if len(want) > 0 && !want[ex.id] {
			continue
		}
		table, err := runBounded(ex.fn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "resilience: %s: %v\n", ex.id, err)
			failed++
			continue
		}
		if *asJSON {
			if err := enc.Encode(table); err != nil {
				fmt.Fprintln(os.Stderr, "resilience:", err)
				return 1
			}
		} else {
			fmt.Println(table.Format())
		}
		if *benchDir != "" {
			path, err := table.WriteJSON(*benchDir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "resilience:", err)
				return 1
			}
			fmt.Fprintf(os.Stderr, "resilience: wrote %s\n", path)
		}
		ran++
	}
	if failed > 0 && ran == 0 {
		return 1
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "resilience: no experiment matched -run (valid: E3 E4 E5 E6 E7 E8 E8H E10 E11 E13 E14 E15 E16 E17 E18 E19 E20 E21 E22)")
		return 2
	}
	return 0
}

// dump writes the observability snapshot collected during the run: the span
// tree (with -trace) to stderr and the metric snapshot (with -metrics) to
// -metrics-out or stderr.
func dump(o *obs.Observer, metrics, trace bool, format, outPath string) {
	if o == nil {
		return
	}
	if trace {
		o.Trace.WriteTree(os.Stderr)
	}
	if !metrics {
		return
	}
	out := os.Stderr
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "resilience:", err)
			return
		}
		defer f.Close()
		out = f
	}
	var err error
	switch format {
	case "prometheus", "prom":
		err = o.Metrics.WritePrometheus(out)
	default:
		err = obs.WriteSnapshotJSON(out, o)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "resilience:", err)
	}
}
