// Command resilience regenerates the experiment tables of EXPERIMENTS.md:
// the empirical validation of every formal claim in "Computational Aspects
// of Resilient Data Extraction from Semistructured Sources" (PODS 2000).
//
// Usage:
//
//	resilience                # run every experiment at the standard scale
//	resilience -quick         # smaller sweeps (seconds, for CI)
//	resilience -run E4,E8     # a subset
//	resilience -timeout 30s   # abandon any experiment that exceeds the deadline
//	resilience -max-states N  # cap automaton construction per experiment
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"resilex/internal/bench"
	"resilex/internal/machine"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced sweeps")
	run := flag.String("run", "", "comma-separated experiment ids (default: all)")
	seed := flag.Int64("seed", 1, "random seed for generated workloads")
	asJSON := flag.Bool("json", false, "emit tables as JSON instead of text")
	maxStates := flag.Int("max-states", 0, "state budget for automaton constructions (0 = default)")
	timeout := flag.Duration("timeout", 0, "deadline per experiment; exceeded experiments are reported and skipped (0 = none)")
	flag.Parse()

	type experiment struct {
		id string
		fn func() bench.Table
	}
	trials := 20
	if *quick {
		trials = 5
	}
	sizes := []int{4, 8, 16, 32, 64, 128}
	e4ns := []int{2, 4, 6, 8, 10, 12, 14, 16}
	e6ns := []int{0, 1, 2, 4, 8, 12, 16}
	e7ks := []int{1, 2, 3, 4, 5, 6}
	edits := []int{1, 2, 4, 6, 8}
	depths := []int{2, 3, 4, 5, 6}
	perEdit := 500
	if *quick {
		sizes = sizes[:4]
		e4ns = e4ns[:5]
		e6ns = e6ns[:5]
		e7ks = e7ks[:4]
		edits = edits[:3]
		depths = depths[:4]
		perEdit = 100
	}
	experiments := []experiment{
		{"E3", func() bench.Table { return bench.E3Ambiguity(sizes, trials, *seed) }},
		{"E4", func() bench.Table { return bench.E4Maximality(e4ns) }},
		{"E5", func() bench.Table { return bench.E5Nonunique() }},
		{"E6", func() bench.Table { return bench.E6LeftFilter(e6ns) }},
		{"E7", func() bench.Table { return bench.E7Pivot(e7ks) }},
		{"E8", func() bench.Table { return bench.E8Resilience(edits, perEdit, *seed) }},
		{"E8H", func() bench.Table { return bench.E8HTML(3, perEdit/2, *seed) }},
		{"E10", func() bench.Table { return bench.E10Factoring(depths, trials, *seed) }},
		{"E11", func() bench.Table { return bench.E11MiddleRow(2, []int{3, 5, 7, 9, 11}) }},
		{"E13", func() bench.Table { return bench.E13Tuple(perEdit, *seed) }},
		{"E14", func() bench.Table { return bench.E14Alphabet([]int{2, 3, 4, 6}, perEdit/2, *seed) }},
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*run, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToUpper(id)] = true
		}
	}
	// runBounded runs one experiment under -timeout/-max-states. Workload
	// generators panic on construction errors they consider impossible; a
	// deadline or tight budget makes those reachable, so they are recovered
	// here and reported as an abandoned experiment instead of a crash.
	runBounded := func(fn func() bench.Table) (table bench.Table, err error) {
		opts := machine.Options{MaxStates: *maxStates}
		if *timeout > 0 {
			ctx, cancel := context.WithTimeout(context.Background(), *timeout)
			defer cancel()
			opts = opts.WithContext(ctx)
		}
		bench.DefaultOptions = opts
		defer func() {
			bench.DefaultOptions = machine.Options{}
			if r := recover(); r != nil {
				err = fmt.Errorf("abandoned: %v", r)
			}
		}()
		return fn(), nil
	}

	ran := 0
	failed := 0
	enc := json.NewEncoder(os.Stdout)
	for _, ex := range experiments {
		if len(want) > 0 && !want[ex.id] {
			continue
		}
		table, err := runBounded(ex.fn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "resilience: %s: %v\n", ex.id, err)
			failed++
			continue
		}
		if *asJSON {
			if err := enc.Encode(table); err != nil {
				fmt.Fprintln(os.Stderr, "resilience:", err)
				os.Exit(1)
			}
		} else {
			fmt.Println(table.Format())
		}
		ran++
	}
	if failed > 0 && ran == 0 {
		os.Exit(1)
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "resilience: no experiment matched -run (valid: E3 E4 E5 E6 E7 E8 E8H E10 E11 E13 E14)")
		os.Exit(2)
	}
}
