// Command extract runs a trained wrapper (see wrapgen) over HTML pages and
// prints the extracted element of each.
//
// Usage:
//
//	extract -w wrapper.json [-timeout 1s] [-max-states N] [-metrics] page1.html ...
//
// For every page the tool prints the byte span and source text of the
// extracted element, or an error when the wrapper does not parse the page.
// A tuple wrapper prints one line per slot of the first record; with
// -records it enumerates every record on the page in document order (the
// one-pass k-ary spanner path).
// -timeout bounds wrapper loading and each extraction with a deadline;
// -max-states (alias -budget) caps automaton construction. With -metrics the
// tool records every construction phase (subset states, minimization passes,
// deadline polls, per-phase wall time) and dumps the metric snapshot on exit
// as JSON (or Prometheus text with -metrics-format prometheus); -trace dumps
// the span tree of the run. The exit status is the number of pages that
// failed.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"resilex"
)

func main() {
	os.Exit(run())
}

func run() int {
	wpath := flag.String("w", "wrapper.json", "wrapper JSON produced by wrapgen")
	budget := flag.Int("budget", 0, "state budget for automaton constructions (0 = default)")
	maxStates := flag.Int("max-states", 0, "alias of -budget: state budget for automaton constructions")
	timeout := flag.Duration("timeout", 0, "deadline per page: loading and each extraction abandon with a deadline error when exceeded (0 = none)")
	quiet := flag.Bool("q", false, "print only the extracted source text")
	records := flag.Bool("records", false, "with a tuple wrapper: enumerate every record on the page (one-pass k-ary spanner) instead of only the first")
	metrics := flag.Bool("metrics", false, "record construction/extraction metrics and dump a snapshot on exit")
	metricsFormat := flag.String("metrics-format", "json", "snapshot format: json (metrics + spans) or prometheus (text exposition)")
	metricsOut := flag.String("metrics-out", "", "write the metric snapshot to this file instead of stderr")
	trace := flag.Bool("trace", false, "dump the span tree of the run to stderr on exit")
	flag.Parse()
	pages := flag.Args()
	if len(pages) == 0 {
		fmt.Fprintln(os.Stderr, "usage: extract -w wrapper.json [-timeout 1s] [-max-states N] [-metrics] page.html ...")
		return 2
	}
	if *maxStates > 0 {
		*budget = *maxStates
	}
	data, err := os.ReadFile(*wpath)
	if err != nil {
		return fatal(err)
	}
	// base carries the observer (when requested) into every construction and
	// extraction context derived below.
	base := context.Background()
	var obs *resilex.Observer
	if *metrics || *trace {
		obs = resilex.NewObserver()
		base = resilex.WithObserver(base, obs)
	}
	defer dump(obs, *metrics, *trace, *metricsFormat, *metricsOut)
	opt := resilex.Options{MaxStates: *budget}
	// bound returns a context honoring -timeout, for loading and per page.
	bound := func() (context.Context, context.CancelFunc) {
		if *timeout > 0 {
			return context.WithTimeout(base, *timeout)
		}
		return base, func() {}
	}
	{
		ctx, cancel := bound()
		opt = opt.WithContext(ctx)
		defer cancel()
	}
	// Dispatch on payload kind: single-slot or tuple wrapper.
	var runPage func(html string) ([]resilex.Region, error)
	if resilex.IsTuplePayload(data) {
		w, err := resilex.LoadTupleWrapper(data, opt)
		if err != nil {
			return fatal(err)
		}
		if *records {
			runPage = func(html string) ([]resilex.Region, error) {
				ctx, cancel := bound()
				defer cancel()
				recs, err := resilex.ExtractRecordsWithin(ctx, w, html)
				if err != nil {
					return nil, err
				}
				var out []resilex.Region
				for _, rec := range recs {
					out = append(out, rec...)
				}
				return out, nil
			}
		} else {
			runPage = func(html string) ([]resilex.Region, error) {
				ctx, cancel := bound()
				defer cancel()
				if err := (resilex.Options{Ctx: ctx}).Err(); err != nil {
					return nil, err
				}
				return w.Extract(html)
			}
		}
	} else {
		if *records {
			return fatal(fmt.Errorf("-records needs a tuple wrapper; %s is single-pivot", *wpath))
		}
		w, err := resilex.LoadWrapper(data, opt)
		if err != nil {
			return fatal(err)
		}
		runPage = func(html string) ([]resilex.Region, error) {
			ctx, cancel := bound()
			defer cancel()
			r, err := resilex.ExtractWithin(ctx, w, html)
			if err != nil {
				return nil, err
			}
			return []resilex.Region{r}, nil
		}
	}
	failures := 0
	for _, page := range pages {
		html, err := os.ReadFile(page)
		if err != nil {
			fmt.Fprintf(os.Stderr, "extract: %s: %v\n", page, err)
			failures++
			continue
		}
		regions, err := runPage(string(html))
		if err != nil {
			fmt.Fprintf(os.Stderr, "extract: %s: %v\n", page, err)
			failures++
			continue
		}
		for _, r := range regions {
			if *quiet {
				fmt.Println(r.Source)
			} else {
				fmt.Printf("%s: token %d, bytes [%d,%d): %s\n",
					page, r.TokenIndex, r.Span.Start, r.Span.End, r.Source)
			}
		}
	}
	return failures
}

// dump writes the observability snapshot collected during the run: the span
// tree (with -trace) to stderr and the metric snapshot (with -metrics) to
// -metrics-out or stderr.
func dump(obs *resilex.Observer, metrics, trace bool, format, outPath string) {
	if obs == nil {
		return
	}
	if trace {
		obs.Trace.WriteTree(os.Stderr)
	}
	if !metrics {
		return
	}
	out := os.Stderr
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "extract:", err)
			return
		}
		defer f.Close()
		out = f
	}
	var err error
	switch format {
	case "prometheus", "prom":
		err = obs.Metrics.WritePrometheus(out)
	default:
		err = resilex.WriteObserverSnapshot(out, obs)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "extract:", err)
	}
}

func fatal(err error) int {
	fmt.Fprintln(os.Stderr, "extract:", err)
	return 1
}
