// Command extract runs a trained wrapper (see wrapgen) over HTML pages and
// prints the extracted element of each.
//
// Usage:
//
//	extract -w wrapper.json [-timeout 1s] [-max-states N] page1.html ...
//
// For every page the tool prints the byte span and source text of the
// extracted element, or an error when the wrapper does not parse the page.
// -timeout bounds wrapper loading and each extraction with a deadline;
// -max-states (alias -budget) caps automaton construction. The exit status
// is the number of pages that failed.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"resilex"
)

func main() {
	wpath := flag.String("w", "wrapper.json", "wrapper JSON produced by wrapgen")
	budget := flag.Int("budget", 0, "state budget for automaton constructions (0 = default)")
	maxStates := flag.Int("max-states", 0, "alias of -budget: state budget for automaton constructions")
	timeout := flag.Duration("timeout", 0, "deadline per page: loading and each extraction abandon with a deadline error when exceeded (0 = none)")
	quiet := flag.Bool("q", false, "print only the extracted source text")
	flag.Parse()
	pages := flag.Args()
	if len(pages) == 0 {
		fmt.Fprintln(os.Stderr, "usage: extract -w wrapper.json [-timeout 1s] [-max-states N] page.html ...")
		os.Exit(2)
	}
	if *maxStates > 0 {
		*budget = *maxStates
	}
	data, err := os.ReadFile(*wpath)
	if err != nil {
		fatal(err)
	}
	opt := resilex.Options{MaxStates: *budget}
	// bound returns a context honoring -timeout, for loading and per page.
	bound := func() (context.Context, context.CancelFunc) {
		if *timeout > 0 {
			return context.WithTimeout(context.Background(), *timeout)
		}
		return context.Background(), func() {}
	}
	{
		ctx, cancel := bound()
		opt = opt.WithContext(ctx)
		defer cancel()
	}
	// Dispatch on payload kind: single-slot or tuple wrapper.
	var run func(html string) ([]resilex.Region, error)
	if resilex.IsTuplePayload(data) {
		w, err := resilex.LoadTupleWrapper(data, opt)
		if err != nil {
			fatal(err)
		}
		run = func(html string) ([]resilex.Region, error) {
			ctx, cancel := bound()
			defer cancel()
			if err := (resilex.Options{Ctx: ctx}).Err(); err != nil {
				return nil, err
			}
			return w.Extract(html)
		}
	} else {
		w, err := resilex.LoadWrapper(data, opt)
		if err != nil {
			fatal(err)
		}
		run = func(html string) ([]resilex.Region, error) {
			ctx, cancel := bound()
			defer cancel()
			r, err := resilex.ExtractWithin(ctx, w, html)
			if err != nil {
				return nil, err
			}
			return []resilex.Region{r}, nil
		}
	}
	failures := 0
	for _, page := range pages {
		html, err := os.ReadFile(page)
		if err != nil {
			fmt.Fprintf(os.Stderr, "extract: %s: %v\n", page, err)
			failures++
			continue
		}
		regions, err := run(string(html))
		if err != nil {
			fmt.Fprintf(os.Stderr, "extract: %s: %v\n", page, err)
			failures++
			continue
		}
		for _, r := range regions {
			if *quiet {
				fmt.Println(r.Source)
			} else {
				fmt.Printf("%s: token %d, bytes [%d,%d): %s\n",
					page, r.TokenIndex, r.Span.Start, r.Span.End, r.Source)
			}
		}
	}
	os.Exit(failures)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "extract:", err)
	os.Exit(1)
}
