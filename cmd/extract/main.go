// Command extract runs a trained wrapper (see wrapgen) over HTML pages and
// prints the extracted element of each.
//
// Usage:
//
//	extract -w wrapper.json page1.html page2.html ...
//
// For every page the tool prints the byte span and source text of the
// extracted element, or an error when the wrapper does not parse the page.
// The exit status is the number of pages that failed.
package main

import (
	"flag"
	"fmt"
	"os"

	"resilex"
)

func main() {
	wpath := flag.String("w", "wrapper.json", "wrapper JSON produced by wrapgen")
	budget := flag.Int("budget", 0, "state budget for automaton constructions (0 = default)")
	quiet := flag.Bool("q", false, "print only the extracted source text")
	flag.Parse()
	pages := flag.Args()
	if len(pages) == 0 {
		fmt.Fprintln(os.Stderr, "usage: extract -w wrapper.json page.html ...")
		os.Exit(2)
	}
	data, err := os.ReadFile(*wpath)
	if err != nil {
		fatal(err)
	}
	opt := resilex.Options{MaxStates: *budget}
	// Dispatch on payload kind: single-slot or tuple wrapper.
	var run func(html string) ([]resilex.Region, error)
	if resilex.IsTuplePayload(data) {
		w, err := resilex.LoadTupleWrapper(data, opt)
		if err != nil {
			fatal(err)
		}
		run = w.Extract
	} else {
		w, err := resilex.LoadWrapper(data, opt)
		if err != nil {
			fatal(err)
		}
		run = func(html string) ([]resilex.Region, error) {
			r, err := w.Extract(html)
			if err != nil {
				return nil, err
			}
			return []resilex.Region{r}, nil
		}
	}
	failures := 0
	for _, page := range pages {
		html, err := os.ReadFile(page)
		if err != nil {
			fmt.Fprintf(os.Stderr, "extract: %s: %v\n", page, err)
			failures++
			continue
		}
		regions, err := run(string(html))
		if err != nil {
			fmt.Fprintf(os.Stderr, "extract: %s: %v\n", page, err)
			failures++
			continue
		}
		for _, r := range regions {
			if *quiet {
				fmt.Println(r.Source)
			} else {
				fmt.Printf("%s: token %d, bytes [%d,%d): %s\n",
					page, r.TokenIndex, r.Span.Start, r.Span.End, r.Source)
			}
		}
	}
	os.Exit(failures)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "extract:", err)
	os.Exit(1)
}
