package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"resilex"
)

// TestMain lets the test binary stand in for the extract binary: re-exec'ed
// with EXTRACT_BE_MAIN=1 it runs main() instead of the tests, so the flag
// surface and exit codes are exercised exactly as shipped.
func TestMain(m *testing.M) {
	if os.Getenv("EXTRACT_BE_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// trainFixture trains the Section 7 wrapper from the fig1 sample pages and
// writes it where the extract binary can load it.
func trainFixture(t *testing.T) (wrapperPath string) {
	t.Helper()
	read := func(name string) string {
		data, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	w, err := resilex.Train([]resilex.Sample{
		{HTML: read("fig1_page1.html"), Target: resilex.TargetMarker()},
		{HTML: read("fig1_page2.html"), Target: resilex.TargetMarker()},
	}, resilex.Config{ExtraTags: []string{"DIV", "/DIV", "HR"}})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	wrapperPath = filepath.Join(t.TempDir(), "wrapper.json")
	if err := os.WriteFile(wrapperPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return wrapperPath
}

func runExtract(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "EXTRACT_BE_MAIN=1")
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	err := cmd.Run()
	if exit, ok := err.(*exec.ExitError); ok {
		code = exit.ExitCode()
	} else if err != nil {
		t.Fatalf("exec: %v", err)
	}
	return out.String(), errb.String(), code
}

// metricsSnapshot mirrors the WriteSnapshotJSON schema the --metrics flag
// emits; decoding with DisallowUnknownFields is the schema check.
type metricsSnapshot struct {
	Metrics struct {
		Counters   map[string]int64 `json:"counters"`
		Gauges     map[string]int64 `json:"gauges"`
		Histograms map[string]struct {
			Count   int64            `json:"count"`
			Sum     int64            `json:"sum"`
			Buckets map[string]int64 `json:"buckets"`
		} `json:"histograms"`
	} `json:"metrics"`
	Spans []struct {
		ID         int64            `json:"id"`
		Parent     int64            `json:"parent"`
		Name       string           `json:"name"`
		DurationUS int64            `json:"duration_us"`
		Attrs      map[string]int64 `json:"attrs"`
	} `json:"spans"`
}

// TestMetricsSnapshotSchema is the metrics-smoke gate: extract --metrics on
// the Section 7 worked example must emit a JSON snapshot with nonzero subset
// construction counters and per-phase span durations.
func TestMetricsSnapshotSchema(t *testing.T) {
	wrapperPath := trainFixture(t)
	metricsPath := filepath.Join(t.TempDir(), "metrics.json")
	stdout, stderr, code := runExtract(t,
		"-w", wrapperPath, "-metrics", "-metrics-out", metricsPath,
		filepath.Join("testdata", "fig1_novel.html"))
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, `type="text"`) {
		t.Errorf("extraction output missing the target input: %q", stdout)
	}

	data, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var snap metricsSnapshot
	if err := dec.Decode(&snap); err != nil {
		t.Fatalf("snapshot does not match schema: %v\n%s", err, data)
	}
	if got := snap.Metrics.Counters["machine_subset_states_total"]; got == 0 {
		t.Errorf("machine_subset_states_total = 0; counters: %v", snap.Metrics.Counters)
	}
	// Every construction phase reports a duration histogram and a span.
	for _, phase := range []string{"machine_determinize", "extract_matcher_compile"} {
		if snap.Metrics.Histograms[phase+"_duration_us"].Count == 0 {
			t.Errorf("no %s_duration_us observations", phase)
		}
	}
	var names []string
	for _, sp := range snap.Spans {
		names = append(names, sp.Name)
		if sp.DurationUS < 0 {
			t.Errorf("span %s has negative duration", sp.Name)
		}
	}
	for _, want := range []string{"machine.determinize", "extract.matcher_compile"} {
		if !slicesContains(names, want) {
			t.Errorf("span %q missing; got %v", want, names)
		}
	}
}

// TestMetricsPrometheusFormat: -metrics-format prometheus emits text
// exposition with typed families.
func TestMetricsPrometheusFormat(t *testing.T) {
	wrapperPath := trainFixture(t)
	metricsPath := filepath.Join(t.TempDir(), "metrics.prom")
	_, stderr, code := runExtract(t,
		"-w", wrapperPath, "-metrics", "-metrics-format", "prometheus",
		"-metrics-out", metricsPath,
		filepath.Join("testdata", "fig1_novel.html"))
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	data, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{
		"# TYPE machine_subset_states_total counter",
		"# TYPE machine_determinize_duration_us histogram",
		`machine_determinize_duration_us_bucket{le="+Inf"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, text)
		}
	}
}

// TestTraceTree: -trace renders the span tree with the construction phases.
func TestTraceTree(t *testing.T) {
	wrapperPath := trainFixture(t)
	_, stderr, code := runExtract(t,
		"-w", wrapperPath, "-trace",
		filepath.Join("testdata", "fig1_novel.html"))
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{"machine.determinize", "extract.matcher_compile"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("trace output missing %q:\n%s", want, stderr)
		}
	}
}

func slicesContains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

// tupleFixture writes a hand-written record wrapper (one (name cell, price
// cell) pair per table row) and a three-row parts page.
func tupleFixture(t *testing.T) (wrapperPath, pagePath string) {
	t.Helper()
	dir := t.TempDir()
	payload, err := json.Marshal(map[string]any{
		"version": 1,
		"kind":    "tuple",
		"expr":    ".* <TD> /TD <TD> .*",
		"sigma":   []string{"TABLE", "/TABLE", "TR", "/TR", "TD", "/TD", "H1", "/H1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	wrapperPath = filepath.Join(dir, "tuple.json")
	if err := os.WriteFile(wrapperPath, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	page := `<h1>Parts</h1><table>
<tr><td>bolt M4</td><td>$0.10</td></tr>
<tr><td>nut M4</td><td>$0.08</td></tr>
<tr><td>washer M4</td><td>$0.02</td></tr>
</table>`
	pagePath = filepath.Join(dir, "parts.html")
	if err := os.WriteFile(pagePath, []byte(page), 0o644); err != nil {
		t.Fatal(err)
	}
	return wrapperPath, pagePath
}

// TestRecordsMode: -records on a tuple wrapper enumerates every record via
// the one-pass k-ary spanner; without it only the first record prints; on a
// single-pivot wrapper the flag is a hard usage error.
func TestRecordsMode(t *testing.T) {
	wrapperPath, pagePath := tupleFixture(t)
	stdout, stderr, code := runExtract(t, "-w", wrapperPath, "-records", "-q", pagePath)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if len(lines) != 6 {
		t.Fatalf("-records printed %d slots, want 6 (3 records x 2 slots):\n%s", len(lines), stdout)
	}
	for i, line := range lines {
		if !strings.HasPrefix(line, "<td") {
			t.Errorf("slot %d = %q, want a td cell", i, line)
		}
	}

	// Default mode is the strict single-record path: it demands the page
	// holds exactly one record (three is an ambiguity error), while one row
	// prints that record's two slots.
	if _, stderr, code := runExtract(t, "-w", wrapperPath, "-q", pagePath); code != 1 ||
		!strings.Contains(stderr, "ambiguous") {
		t.Fatalf("default tuple mode on a 3-record page: exit %d, stderr: %s", code, stderr)
	}
	onePath := filepath.Join(filepath.Dir(pagePath), "one.html")
	if err := os.WriteFile(onePath, []byte(`<table><tr><td>bolt</td><td>$0.10</td></tr></table>`), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout, stderr, code = runExtract(t, "-w", wrapperPath, "-q", onePath)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if lines := strings.Split(strings.TrimSpace(stdout), "\n"); len(lines) != 2 {
		t.Fatalf("default tuple mode printed %d slots, want 2:\n%s", len(lines), stdout)
	}

	single := trainFixture(t)
	if _, stderr, code := runExtract(t, "-w", single, "-records", "-q", pagePath); code != 1 ||
		!strings.Contains(stderr, "single-pivot") {
		t.Fatalf("-records on single-pivot wrapper: exit %d, stderr: %s", code, stderr)
	}
}
