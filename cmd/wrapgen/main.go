// Command wrapgen induces a resilient extraction wrapper from sample HTML
// pages. In each sample the target element carries a data-target attribute:
//
//	<input type="text" name="q" data-target>
//
// The tool tokenizes the samples, induces an unambiguous extraction
// expression with the merging heuristic, maximizes it for resilience, and
// writes the wrapper as JSON.
//
// Usage:
//
//	wrapgen -o wrapper.json [-skip BR,HR] [-attrs type] [-extra DIV,/DIV] \
//	        [-no-maximize] sample1.html sample2.html ...
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"resilex"
)

func main() {
	out := flag.String("o", "wrapper.json", "output file for the wrapper JSON")
	skip := flag.String("skip", "", "comma-separated tags to drop during tokenization (e.g. BR,HR)")
	attrs := flag.String("attrs", "", "comma-separated attribute keys refining tag symbols (e.g. type)")
	extra := flag.String("extra", "", "comma-separated extra tags to include in the alphabet")
	noMax := flag.Bool("no-maximize", false, "keep the merged expression without maximizing")
	budget := flag.Int("budget", 0, "state budget for automaton constructions (0 = default)")
	tuple := flag.Bool("tuple", false, "train a multi-slot tuple wrapper (every data-target in a sample is one slot)")
	dtdPath := flag.String("dtd", "", "DTD file whose declared elements extend the wrapper's alphabet")
	flag.Parse()
	files := flag.Args()
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "usage: wrapgen [flags] sample.html ...")
		os.Exit(2)
	}
	var samples []resilex.Sample
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			fatal(err)
		}
		samples = append(samples, resilex.Sample{HTML: string(data), Target: resilex.TargetMarker()})
	}
	extraTags := split(*extra)
	if *dtdPath != "" {
		data, err := os.ReadFile(*dtdPath)
		if err != nil {
			fatal(err)
		}
		dtd, err := resilex.ParseDTD(string(data))
		if err != nil {
			fatal(err)
		}
		extraTags = append(extraTags, dtd.Vocabulary()...)
	}
	cfg := resilex.Config{
		Skip:         split(*skip),
		AttrKeys:     split(*attrs),
		ExtraTags:    extraTags,
		SkipMaximize: *noMax,
		Options:      resilex.Options{MaxStates: *budget},
	}
	var data []byte
	var strategy, expr string
	if *tuple {
		w, err := resilex.TrainTuple(samples, cfg)
		if err != nil {
			fatal(err)
		}
		data, err = json.MarshalIndent(w, "", "  ")
		if err != nil {
			fatal(err)
		}
		strategy = fmt.Sprintf("tuple (%d slots)", w.Arity())
		expr = w.String()
	} else {
		w, err := resilex.Train(samples, cfg)
		if err != nil {
			fatal(err)
		}
		data, err = json.MarshalIndent(w, "", "  ")
		if err != nil {
			fatal(err)
		}
		strategy = w.Strategy()
		expr = w.String()
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrapper written to %s\n", *out)
	fmt.Printf("strategy:   %s\n", strategy)
	fmt.Printf("expression: %s\n", expr)
}

func split(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wrapgen:", err)
	os.Exit(1)
}
