# resilex — build / test / reproduce targets.

GO ?= go

.PHONY: all build fmt-check vet test race cover fuzz fuzz-smoke fuzz-lint check bench microbench experiments examples metrics-smoke metrics-lint doc-smoke cache-smoke cluster-smoke refresh-smoke alloc-gate spanner-gate clean

all: build vet test

# The robustness gate: static checks, the full suite under the race
# detector, the fuzz lint (every Fuzz* function in the tree registered in
# FUZZ_TARGETS, both directions), a short fuzz smoke over every fuzz
# target, the observability smoke over the worked example, the metrics
# lint (registered names vs the DESIGN.md §6 reference, both directions),
# the godoc smoke over the serving-path APIs, the cache-hit-rate smoke
# over a quick E16 run, the sharded cluster smoke (boot router + 2 shards,
# replicate, extract, failover, assemble the request trace across both
# processes), the refresh smoke (drift -> canary -> promote, break ->
# rollback), the streaming alloc gate (zero-alloc warm paths +
# one-pass/two-pass differential fuzz smoke), and the spanner gate (the
# one-pass k-ary spanner differentials against the naive k-nested oracle).
check: fmt-check vet race fuzz-lint fuzz-smoke metrics-smoke metrics-lint doc-smoke cache-smoke cluster-smoke refresh-smoke alloc-gate spanner-gate

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Every fuzz target in the tree as Name:./package-dir/ pairs — the single
# source of truth `fuzz`, `fuzz-smoke` and the scheduled CI long-fuzz
# iterate over, reconciled against the tree by `make fuzz-lint`: a Fuzz*
# function added without a row here fails `make check`.
FUZZ_TARGETS := \
	FuzzParse:./internal/rx/ \
	FuzzParseMarked:./internal/rx/ \
	FuzzScan:./internal/htmltok/ \
	FuzzStreamerChunks:./internal/htmltok/ \
	FuzzLoadWrapper:./internal/wrapper/ \
	FuzzLoadFleet:./internal/wrapper/ \
	FuzzDecodeArtifact:./internal/extract/ \
	FuzzStreamTwoPassEquiv:./internal/extract/ \
	FuzzLazyEagerEquiv:./internal/machine/ \
	FuzzDecodeVersionRecord:./internal/cluster/ \
	FuzzSpannerOracleEquiv:./internal/spanner/ \
	FuzzAPISequence:./internal/seqfuzz/

# One fuzz session per registered target; $(1) is the per-target budget.
define run-fuzz
	@set -e; for t in $(FUZZ_TARGETS); do \
		name=$${t%%:*}; dir=$${t#*:}; \
		echo "==> fuzz $$name ($$dir, $(1))"; \
		$(GO) test -fuzz=^$$name\$$ -fuzztime=$(1) $$dir; \
	done
endef

# Fuzz session over every registered target. Override FUZZTIME for longer
# campaigns (the weekly CI job runs `make fuzz FUZZTIME=10m`).
FUZZTIME ?= 10s
fuzz:
	$(call run-fuzz,$(FUZZTIME))

# 5s per target, for the check gate.
fuzz-smoke:
	$(call run-fuzz,5s)

# Fuzz lint: FUZZ_TARGETS and the tree's Fuzz* functions must agree, both
# directions. Fails listing unregistered targets or stale rows.
fuzz-lint:
	sh scripts/fuzz_lint.sh $(FUZZ_TARGETS)

# The serving-path experiments at a fixed seed: E16 throughput (docs/sec,
# p50/p99 latency, cache hit rate), E17 persistence (cold-compile vs
# warm-disk vs warm-memory first-request latency), E18 cluster scaling
# (1/2/4-shard throughput plus a kill-one-shard failover run) and E19
# continuous refresh (drift -> canary -> promote, break -> rollback, zero
# failed requests), E20 tracing overhead (traced vs untraced cached-batch
# p50), E21 streaming extraction (one-pass zero-alloc path vs the
# materialized two-scan) and E22 k-ary spanner extraction (one-pass
# multi-split automaton vs k-nested sequential passes), written to
# ./BENCH_E16.json ... ./BENCH_E22.json.
bench:
	$(GO) run ./cmd/resilience -run E16,E17,E18,E19,E20,E21,E22 -seed 1 -bench-dir .

# Go microbenchmarks (go test -bench) over every package.
microbench:
	$(GO) test -bench=. -benchmem ./...

# The EXPERIMENTS.md tables.
experiments:
	$(GO) run ./cmd/resilience

# Observability smoke: the schema tests, then an end-to-end run — train the
# Section 7 wrapper from the fig1 fixtures, extract with --metrics, and
# check the snapshot carries the subset-construction counters.
metrics-smoke:
	$(GO) test ./cmd/extract -run 'TestMetrics|TestTrace' -v
	mkdir -p .smoke
	$(GO) run ./cmd/wrapgen -o .smoke/wrapper.json -extra DIV,/DIV,HR \
		cmd/extract/testdata/fig1_page1.html cmd/extract/testdata/fig1_page2.html
	$(GO) run ./cmd/extract -w .smoke/wrapper.json -metrics -metrics-out .smoke/metrics.json \
		cmd/extract/testdata/fig1_novel.html
	grep -q machine_subset_states_total .smoke/metrics.json
	rm -rf .smoke

# Metrics lint: every metric name registered in code must have a row in
# the DESIGN.md §6 reference tables, and every documented name must still
# exist in code. Fails listing undocumented or stale names.
metrics-lint:
	sh scripts/metrics_lint.sh

# godoc smoke: the serving-path APIs keep rendering documentation.
doc-smoke:
	$(GO) doc resilex/internal/machine LazyDFA >/dev/null
	$(GO) doc resilex/internal/extract Cache >/dev/null
	$(GO) doc resilex/internal/wrapper Fleet.ExtractBatch >/dev/null
	$(GO) doc resilex/internal/extract StreamMatcher >/dev/null
	$(GO) doc resilex/internal/wrapper StreamExtractor.ExtractReaderTo >/dev/null
	$(GO) doc resilex/internal/serve Server >/dev/null
	$(GO) doc resilex/internal/cluster Router >/dev/null
	$(GO) doc resilex/cmd/serve >/dev/null

# Cache smoke: a quick E16 run must show a repeated-wrapper hit rate in
# the nineties.
cache-smoke:
	$(GO) run ./cmd/resilience -quick -run E16 -json | grep -qE '"9[0-9]\.[0-9]"'

# Cluster smoke: boot a router + 2 shards, PUT a wrapper through the router
# (replicated to both owners), extract through the router, kill a shard,
# extract again (failover), then DELETE and confirm the key is gone.
cluster-smoke:
	sh scripts/cluster_smoke.sh

# Streaming alloc gate: the zero-allocation assertions on every warm
# streaming layer (matcher run, tokenizer feed, wrapper serve path) plus a
# short differential fuzz of the one-pass matcher against the two-scan
# oracle and of the chunked tokenizer against Scan. Guards the 0 allocs/op
# and boundary-straddling invariants ISSUE 8 introduced.
alloc-gate:
	$(GO) test -run 'TestStreamRunZeroAlloc|TestStreamMatcherEquivalence' -count=1 ./internal/extract/
	$(GO) test -run 'TestStreamerFeedNoAllocWarm|TestStreamerMatchesScan' -count=1 ./internal/htmltok/
	$(GO) test -run 'TestStreamZeroAllocWarm|TestStreamMatchesExtract|TestStreamLargePageConstantState' -count=1 ./internal/wrapper/
	$(GO) test -fuzz=FuzzStreamTwoPassEquiv -fuzztime=5s ./internal/extract/
	$(GO) test -fuzz=FuzzStreamerChunks -fuzztime=5s ./internal/htmltok/

# Spanner gate: the one-pass k-ary spanner against the naive k-nested
# oracle — the deterministic differentials plus a short fuzz of arbitrary
# tuple expressions over arbitrary words, and the relational-algebra layer
# over extracted regions. Guards the multi-split automaton ISSUE 10
# introduced.
spanner-gate:
	$(GO) test -run 'TestProgramMatchesOracle|TestUnambiguousTupleInvariant|TestRecordEnumeration|TestAlgebraOverExtracted' -count=1 ./internal/spanner/
	$(GO) test -fuzz=FuzzSpannerOracleEquiv -fuzztime=5s ./internal/spanner/

# Refresh smoke: boot one node with the drift watcher on, PUT v1, drop a
# drifted sample and drive drifted traffic until the watcher canaries and
# promotes the re-induced wrapper, then swap the spool to an alien family
# and confirm the bad canary rolls back — with every request answered.
refresh-smoke:
	sh scripts/refresh_smoke.sh

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/shopbot
	$(GO) run ./examples/resilience
	$(GO) run ./examples/catalog
	$(GO) run ./examples/tuples
	$(GO) run ./examples/maintenance

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
