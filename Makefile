# resilex — build / test / reproduce targets.

GO ?= go

.PHONY: all build vet test race cover fuzz fuzz-smoke check bench experiments examples metrics-smoke clean

all: build vet test

# The robustness gate: static checks, the full suite under the race
# detector, a short fuzz smoke over every fuzz target, and the
# observability smoke over the worked example.
check: vet race fuzz-smoke metrics-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Short fuzz session over every fuzz target.
fuzz:
	$(GO) test -fuzz=FuzzParse$$ -fuzztime=10s ./internal/rx/
	$(GO) test -fuzz=FuzzParseMarked -fuzztime=10s ./internal/rx/
	$(GO) test -fuzz=FuzzScan -fuzztime=10s ./internal/htmltok/
	$(GO) test -fuzz=FuzzLoadWrapper -fuzztime=10s ./internal/wrapper/
	$(GO) test -fuzz=FuzzLoadFleet -fuzztime=10s ./internal/wrapper/

# 5s per target, for the check gate.
fuzz-smoke:
	$(GO) test -fuzz=FuzzParse$$ -fuzztime=5s ./internal/rx/
	$(GO) test -fuzz=FuzzParseMarked -fuzztime=5s ./internal/rx/
	$(GO) test -fuzz=FuzzScan -fuzztime=5s ./internal/htmltok/
	$(GO) test -fuzz=FuzzLoadWrapper -fuzztime=5s ./internal/wrapper/
	$(GO) test -fuzz=FuzzLoadFleet -fuzztime=5s ./internal/wrapper/

# Every experiment series (E1..E13) plus the ablations.
bench:
	$(GO) test -bench=. -benchmem ./...

# The EXPERIMENTS.md tables.
experiments:
	$(GO) run ./cmd/resilience

# Observability smoke: the schema tests, then an end-to-end run — train the
# Section 7 wrapper from the fig1 fixtures, extract with --metrics, and
# check the snapshot carries the subset-construction counters.
metrics-smoke:
	$(GO) test ./cmd/extract -run 'TestMetrics|TestTrace' -v
	mkdir -p .smoke
	$(GO) run ./cmd/wrapgen -o .smoke/wrapper.json -extra DIV,/DIV,HR \
		cmd/extract/testdata/fig1_page1.html cmd/extract/testdata/fig1_page2.html
	$(GO) run ./cmd/extract -w .smoke/wrapper.json -metrics -metrics-out .smoke/metrics.json \
		cmd/extract/testdata/fig1_novel.html
	grep -q machine_subset_states_total .smoke/metrics.json
	rm -rf .smoke

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/shopbot
	$(GO) run ./examples/resilience
	$(GO) run ./examples/catalog
	$(GO) run ./examples/tuples
	$(GO) run ./examples/maintenance

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
