# resilex — build / test / reproduce targets.

GO ?= go

.PHONY: all build vet test race cover fuzz fuzz-smoke check bench experiments examples clean

all: build vet test

# The robustness gate: static checks, the full suite under the race
# detector, and a short fuzz smoke over every fuzz target.
check: vet race fuzz-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Short fuzz session over every fuzz target.
fuzz:
	$(GO) test -fuzz=FuzzParse$$ -fuzztime=10s ./internal/rx/
	$(GO) test -fuzz=FuzzParseMarked -fuzztime=10s ./internal/rx/
	$(GO) test -fuzz=FuzzScan -fuzztime=10s ./internal/htmltok/
	$(GO) test -fuzz=FuzzLoadWrapper -fuzztime=10s ./internal/wrapper/
	$(GO) test -fuzz=FuzzLoadFleet -fuzztime=10s ./internal/wrapper/

# 5s per target, for the check gate.
fuzz-smoke:
	$(GO) test -fuzz=FuzzParse$$ -fuzztime=5s ./internal/rx/
	$(GO) test -fuzz=FuzzParseMarked -fuzztime=5s ./internal/rx/
	$(GO) test -fuzz=FuzzScan -fuzztime=5s ./internal/htmltok/
	$(GO) test -fuzz=FuzzLoadWrapper -fuzztime=5s ./internal/wrapper/
	$(GO) test -fuzz=FuzzLoadFleet -fuzztime=5s ./internal/wrapper/

# Every experiment series (E1..E13) plus the ablations.
bench:
	$(GO) test -bench=. -benchmem ./...

# The EXPERIMENTS.md tables.
experiments:
	$(GO) run ./cmd/resilience

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/shopbot
	$(GO) run ./examples/resilience
	$(GO) run ./examples/catalog
	$(GO) run ./examples/tuples
	$(GO) run ./examples/maintenance

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
