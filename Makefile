# resilex — build / test / reproduce targets.

GO ?= go

.PHONY: all build vet test race cover fuzz bench experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Short fuzz session over every fuzz target.
fuzz:
	$(GO) test -fuzz=FuzzParse$$ -fuzztime=10s ./internal/rx/
	$(GO) test -fuzz=FuzzParseMarked -fuzztime=10s ./internal/rx/
	$(GO) test -fuzz=FuzzScan -fuzztime=10s ./internal/htmltok/

# Every experiment series (E1..E13) plus the ablations.
bench:
	$(GO) test -bench=. -benchmem ./...

# The EXPERIMENTS.md tables.
experiments:
	$(GO) run ./cmd/resilience

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/shopbot
	$(GO) run ./examples/resilience
	$(GO) run ./examples/catalog
	$(GO) run ./examples/tuples
	$(GO) run ./examples/maintenance

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
