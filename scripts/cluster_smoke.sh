#!/bin/sh
# cluster_smoke.sh — end-to-end smoke of the sharded serving path.
#
# Boots a 2-shard cluster behind a router (real processes, real HTTP):
#   1. PUT a trained wrapper through the router (replicated to both shards),
#   2. extract a document through the router,
#   3. fetch the assembled trace for that request from the router's
#      /debug/traces/{id} and assert the span tree covers both processes
#      (router routing spans + shard request/cache spans),
#   4. kill one shard,
#   5. extract again — the router must fail over and still answer,
#   6. DELETE the wrapper through the router and confirm it is gone.
#
# Run from the repository root (make cluster-smoke). Exits non-zero on the
# first broken step.
set -eu

PORT_ROUTER=${PORT_ROUTER:-18440}
PORT_SHARD1=${PORT_SHARD1:-18441}
PORT_SHARD2=${PORT_SHARD2:-18442}
DIR=.smoke-cluster
ROUTER=http://127.0.0.1:$PORT_ROUTER

rm -rf "$DIR"
mkdir -p "$DIR"

PIDS=""
cleanup() {
    for pid in $PIDS; do
        kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$DIR"
}
trap cleanup EXIT INT TERM

echo "cluster-smoke: building serve"
go build -o "$DIR/serve" ./cmd/serve

echo "cluster-smoke: training wrapper"
go run ./cmd/wrapgen -o "$DIR/wrapper.json" -extra DIV,/DIV,HR \
    cmd/extract/testdata/fig1_page1.html cmd/extract/testdata/fig1_page2.html

echo "cluster-smoke: booting 2 shards + router"
"$DIR/serve" -mode shard -listen 127.0.0.1:$PORT_SHARD1 -cache-dir "$DIR/shard1" 2>"$DIR/shard1.log" &
PIDS="$PIDS $!"
SHARD1_PID=$!
"$DIR/serve" -mode shard -listen 127.0.0.1:$PORT_SHARD2 -cache-dir "$DIR/shard2" 2>"$DIR/shard2.log" &
PIDS="$PIDS $!"
"$DIR/serve" -mode router -listen 127.0.0.1:$PORT_ROUTER \
    -peers http://127.0.0.1:$PORT_SHARD1,http://127.0.0.1:$PORT_SHARD2 \
    -replicas 2 -health-interval 200ms 2>"$DIR/router.log" &
PIDS="$PIDS $!"

wait_up() {
    url=$1
    for _ in $(seq 1 50); do
        if curl -sf "$url/healthz" >/dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    echo "cluster-smoke: $url never became healthy" >&2
    return 1
}
wait_up http://127.0.0.1:$PORT_SHARD1
wait_up http://127.0.0.1:$PORT_SHARD2
wait_up "$ROUTER"

# One client-minted trace ID sent on the PUT and the extract: the replicated
# applies and the routed extraction all join the same trace, so the assembled
# tree covers the whole lifecycle.
TRACE_ID=$(od -An -tx1 -N16 /dev/urandom | tr -d ' \n')

echo "cluster-smoke: registering wrapper through the router"
put=$(curl -s -o "$DIR/put.json" -w '%{http_code}' -X PUT \
    -H 'Content-Type: application/json' -H "X-Resilex-Trace: $TRACE_ID" \
    --data-binary @"$DIR/wrapper.json" \
    "$ROUTER/wrappers/vs")
[ "$put" = 201 ] || { echo "cluster-smoke: PUT status $put: $(cat "$DIR/put.json")" >&2; exit 1; }
grep -q '"replicated":2' "$DIR/put.json" || {
    echo "cluster-smoke: PUT not replicated to both shards: $(cat "$DIR/put.json")" >&2; exit 1; }

echo "cluster-smoke: extracting through the router"
curl -s -D "$DIR/extract1.hdr" -H 'Content-Type: application/json' \
    -H "X-Resilex-Trace: $TRACE_ID" \
    --data-binary @scripts/testdata/cluster_smoke_request.json \
    "$ROUTER/extract" >"$DIR/extract1.json"
grep -q '"ok":true' "$DIR/extract1.json" || {
    echo "cluster-smoke: extraction failed: $(cat "$DIR/extract1.json")" >&2; exit 1; }

echo "cluster-smoke: assembling the request trace across both processes"
# The router joined our trace and echoed its ID in the response header; its
# /debug/traces/{id} endpoint merges its own spans with both shards' halves
# fetched over HTTP. The assembled tree must contain the router's routing
# spans AND the shards' apply/request/cache spans — i.e. spans from multiple
# processes under one trace ID.
echoed=$(tr -d '\r' <"$DIR/extract1.hdr" |
    awk -F': ' 'tolower($1)=="x-resilex-trace"{print $2}')
[ "$echoed" = "$TRACE_ID" ] || {
    echo "cluster-smoke: extract response echoed trace \"$echoed\", want $TRACE_ID" >&2
    exit 1; }
curl -sf "$ROUTER/debug/traces/$TRACE_ID" >"$DIR/trace.json" || {
    echo "cluster-smoke: trace $TRACE_ID not retrievable from the router" >&2; exit 1; }
for span in router.extract router.attempt router.replicate \
    serve.extract shard.apply cache.lookup; do
    grep -q "\"$span\"" "$DIR/trace.json" || {
        echo "cluster-smoke: assembled trace missing span $span: $(cat "$DIR/trace.json")" >&2
        exit 1; }
done

echo "cluster-smoke: killing shard 1, extracting again (failover)"
kill "$SHARD1_PID"
wait "$SHARD1_PID" 2>/dev/null || true
curl -s -H 'Content-Type: application/json' \
    --data-binary @scripts/testdata/cluster_smoke_request.json \
    "$ROUTER/extract" >"$DIR/extract2.json"
grep -q '"ok":true' "$DIR/extract2.json" || {
    echo "cluster-smoke: extraction after shard kill failed: $(cat "$DIR/extract2.json")" >&2; exit 1; }

echo "cluster-smoke: deleting wrapper through the router"
del=$(curl -s -o "$DIR/del.json" -w '%{http_code}' -X DELETE "$ROUTER/wrappers/vs")
[ "$del" = 200 ] || { echo "cluster-smoke: DELETE status $del: $(cat "$DIR/del.json")" >&2; exit 1; }
curl -s -H 'Content-Type: application/json' \
    --data-binary @scripts/testdata/cluster_smoke_request.json \
    "$ROUTER/extract" >"$DIR/extract3.json"
grep -q '"ok":true' "$DIR/extract3.json" && {
    echo "cluster-smoke: extraction still succeeds after DELETE" >&2; exit 1; }

echo "cluster-smoke: OK (replicated put, routed extract, cross-process trace, failover extract, replicated delete)"
