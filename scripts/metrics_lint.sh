#!/bin/sh
# metrics_lint.sh — cross-check registered metric names against DESIGN.md §6.
#
# Two-way: every metric name literal in non-test Go code must appear in the
# §6 reference tables (no undocumented metrics), and every name documented
# there must still exist in code (no stale rows). A code literal ending in
# `_` (e.g. "supervisor_rung_" + kind + "_total") is a runtime-concatenated
# prefix: it is satisfied by any documented name starting with it, and it
# marks every documented name it prefixes as live.
#
# Run from the repository root (make metrics-lint). Exits non-zero listing
# the offending names.
set -eu
cd "$(dirname "$0")/.."

PREFIXES='machine|extract|supervisor|wrapper|serve|cluster|refresh|obs|spanner'
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT INT TERM

# Code side: quoted metric-name literals in non-test sources. The pattern is
# anchored on the registry's naming convention (<subsystem>_<snake_case>), so
# ordinary strings never collide with it.
grep -rhoE "\"(${PREFIXES})_[a-z0-9_]+\"" \
    --include='*.go' --exclude='*_test.go' internal/ cmd/ examples/ |
    tr -d '"' | sort -u >"$TMP/code"

# Doc side: backticked names in the §6 table rows, label sets stripped.
awk '/^## 6\./{flag=1;next}/^## /{flag=0}flag' DESIGN.md |
    grep '^|' |
    grep -oE '`[a-z0-9_{}=",]+`' |
    tr -d '`' | sed 's/{[^}]*}//g' |
    grep -E "^(${PREFIXES})_[a-z0-9_]+$" | sort -u >"$TMP/doc"

fail=0

# Undocumented: code names with no doc row (exact match, or prefix literal
# matched by some documented name).
while IFS= read -r name; do
    case "$name" in
    *_)
        grep -q "^${name}" "$TMP/doc" || {
            echo "metrics-lint: undocumented metric prefix \`$name*\` (add a row to DESIGN.md §6)" >&2
            fail=1
        }
        ;;
    *)
        grep -qx "$name" "$TMP/doc" || {
            echo "metrics-lint: undocumented metric \`$name\` (add a row to DESIGN.md §6)" >&2
            fail=1
        }
        ;;
    esac
done <"$TMP/code"

# Stale: doc rows naming metrics no code registers (exact literal, or covered
# by a concatenated prefix literal).
while IFS= read -r name; do
    if grep -qx "$name" "$TMP/code"; then
        continue
    fi
    covered=0
    while IFS= read -r prefix; do
        case "$name" in
        "${prefix}"*) covered=1 ;;
        esac
    done <<EOF
$(grep '_$' "$TMP/code" || true)
EOF
    [ "$covered" = 1 ] || {
        echo "metrics-lint: stale doc row \`$name\` (no code registers it; update DESIGN.md §6)" >&2
        fail=1
    }
done <"$TMP/doc"

if [ "$fail" = 0 ]; then
    echo "metrics-lint: OK ($(wc -l <"$TMP/code" | tr -d ' ') code names, $(wc -l <"$TMP/doc" | tr -d ' ') doc rows)"
fi
exit "$fail"
