#!/bin/sh
# fuzz_lint.sh — reconcile the Makefile's FUZZ_TARGETS list with the tree.
#
# Two-way: every `func Fuzz*` in a *_test.go file must be registered in
# FUZZ_TARGETS (so `make fuzz` / `make fuzz-smoke` and the scheduled CI
# long-fuzz actually exercise it — an unregistered target is a fuzzer that
# silently never runs), and every registered Name:./dir/ pair must still
# name a fuzz function that exists (no stale entries after a rename).
#
# Invoked by `make fuzz-lint`, which passes the expanded list as arguments:
#     sh scripts/fuzz_lint.sh FuzzParse:./internal/rx/ ...
# Exits non-zero listing the offending entries.
set -eu
cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT INT TERM

# Tree side: fuzz function declarations, normalized to Name:./dir/ form.
grep -rn '^func Fuzz' --include='*_test.go' internal/ cmd/ 2>/dev/null |
    sed -E 's|^([^:]*)/[^/:]+:[0-9]+:func (Fuzz[A-Za-z0-9_]*)\(.*|\2:./\1/|' |
    sort -u >"$TMP/tree"

# Makefile side: the FUZZ_TARGETS entries, passed as our arguments.
printf '%s\n' "$@" | sed '/^$/d' | sort -u >"$TMP/make"

fail=0
while IFS= read -r entry; do
    grep -qx "$entry" "$TMP/make" || {
        echo "fuzz-lint: unregistered fuzz target $entry (add it to FUZZ_TARGETS in the Makefile)" >&2
        fail=1
    }
done <"$TMP/tree"
while IFS= read -r entry; do
    grep -qx "$entry" "$TMP/tree" || {
        echo "fuzz-lint: stale FUZZ_TARGETS entry $entry (no such fuzz function in the tree)" >&2
        fail=1
    }
done <"$TMP/make"

if [ "$fail" = 0 ]; then
    echo "fuzz-lint: OK ($(wc -l <"$TMP/tree" | tr -d ' ') fuzz targets registered)"
fi
exit "$fail"
