#!/bin/sh
# refresh_smoke.sh — end-to-end smoke of the continuous-refresh pipeline.
#
# Boots one serve node (real process, real HTTP) with the drift watcher on:
#   1. PUT a trained wrapper (v1), extract a base-layout document,
#   2. drop a redesigned page into the sample spool and switch live traffic
#      to the same redesign — the watcher must detect the drift, re-induce,
#      canary the candidate, and promote it on the observation window,
#   3. swap the spool to an alien page family while live traffic stays on
#      the redesign — the re-induced canary misses real traffic and the
#      watcher must roll it back automatically,
#   4. every /extract request across all phases must answer 200, and after
#      the rollback every document must still extract (canary misses fall
#      back to the active version inside the request).
#
# Run from the repository root (make refresh-smoke). Exits non-zero on the
# first broken step.
set -eu

PORT=${PORT:-18450}
DIR=.smoke-refresh
NODE=http://127.0.0.1:$PORT

rm -rf "$DIR"
mkdir -p "$DIR/spool/vs"

PIDS=""
cleanup() {
    for pid in $PIDS; do
        kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$DIR"
}
trap cleanup EXIT INT TERM

echo "refresh-smoke: building serve"
go build -o "$DIR/serve" ./cmd/serve

echo "refresh-smoke: training v1 wrapper"
go run ./cmd/wrapgen -o "$DIR/wrapper.json" \
    cmd/extract/testdata/fig1_page1.html cmd/extract/testdata/fig1_page2.html

echo "refresh-smoke: booting node with drift watcher (300ms interval, canary fraction 0.5)"
"$DIR/serve" -mode single -listen 127.0.0.1:$PORT -cache-dir "$DIR/node" \
    -sample-dir "$DIR/spool" -refresh-interval 300ms -refresh-min-samples 1 \
    -canary-fraction 0.5 2>"$DIR/node.log" &
PIDS="$PIDS $!"

wait_up() {
    for _ in $(seq 1 50); do
        if curl -sf "$NODE/healthz" >/dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    echo "refresh-smoke: $NODE never became healthy" >&2
    return 1
}
wait_up

echo "refresh-smoke: registering v1"
put=$(curl -s -o "$DIR/put.json" -w '%{http_code}' -X PUT \
    -H 'Content-Type: application/json' --data-binary @"$DIR/wrapper.json" \
    "$NODE/wrappers/vs")
[ "$put" = 201 ] || { echo "refresh-smoke: PUT status $put: $(cat "$DIR/put.json")" >&2; exit 1; }
grep -q '"version":1' "$DIR/put.json" || {
    echo "refresh-smoke: PUT did not assign version 1: $(cat "$DIR/put.json")" >&2; exit 1; }

curl -s -H 'Content-Type: application/json' \
    --data-binary @scripts/testdata/refresh_smoke_base_request.json \
    "$NODE/extract" >"$DIR/extract_base.json"
grep -q '"ok":true' "$DIR/extract_base.json" || {
    echo "refresh-smoke: base extraction failed: $(cat "$DIR/extract_base.json")" >&2; exit 1; }

# pump sends n live-traffic requests of the drifted layout, failing the smoke
# on any non-200 answer (the zero-failed-requests property).
REQS=0
pump() {
    n=$1
    i=0
    while [ "$i" -lt "$n" ]; do
        code=$(curl -s -o "$DIR/extract_last.json" -w '%{http_code}' \
            -H 'Content-Type: application/json' \
            --data-binary @scripts/testdata/refresh_smoke_drift_request.json \
            "$NODE/extract")
        [ "$code" = 200 ] || {
            echo "refresh-smoke: extract answered $code mid-rollout: $(cat "$DIR/extract_last.json")" >&2
            exit 1; }
        REQS=$((REQS + 1))
        i=$((i + 1))
    done
}

echo "refresh-smoke: dropping drifted sample, driving drifted traffic (expect canary then promote)"
cp scripts/testdata/refresh_smoke_drift.html "$DIR/spool/vs/drift.html"
promoted=""
for _ in $(seq 1 100); do
    pump 10
    curl -s "$NODE/wrappers/vs/versions" >"$DIR/versions.json"
    if grep -q '"lastOutcome":"promoted"' "$DIR/versions.json"; then promoted=yes; break; fi
    sleep 0.1
done
[ -n "$promoted" ] || {
    echo "refresh-smoke: drifted sample never promoted: $(cat "$DIR/versions.json")" >&2
    tail -5 "$DIR/node.log" >&2; exit 1; }
grep -q '"version":2' "$DIR/versions.json" || {
    echo "refresh-smoke: promotion did not activate version 2: $(cat "$DIR/versions.json")" >&2; exit 1; }

curl -s -H 'Content-Type: application/json' \
    --data-binary @scripts/testdata/refresh_smoke_drift_request.json \
    "$NODE/extract" >"$DIR/extract_promoted.json"
grep -q '"ok":false' "$DIR/extract_promoted.json" && {
    echo "refresh-smoke: drifted traffic still misses after promotion: $(cat "$DIR/extract_promoted.json")" >&2; exit 1; }

echo "refresh-smoke: swapping spool to an alien family (expect canary then rollback)"
rm "$DIR/spool/vs/drift.html"
cp scripts/testdata/refresh_smoke_break.html "$DIR/spool/vs/break.html"
rolled=""
for _ in $(seq 1 100); do
    pump 10
    # Live traffic never changed, so every document must keep extracting —
    # a canary miss has to fall back to the active version in-request.
    grep -q '"ok":false' "$DIR/extract_last.json" && {
        echo "refresh-smoke: bad canary cost an extraction: $(cat "$DIR/extract_last.json")" >&2; exit 1; }
    curl -s "$NODE/wrappers/vs/versions" >"$DIR/versions.json"
    if grep -q '"lastOutcome":"rolled-back"' "$DIR/versions.json"; then rolled=yes; break; fi
    sleep 0.1
done
[ -n "$rolled" ] || {
    echo "refresh-smoke: alien sample never rolled back: $(cat "$DIR/versions.json")" >&2
    tail -5 "$DIR/node.log" >&2; exit 1; }

curl -s "$NODE/metrics" >"$DIR/metrics.txt"
grep -q 'refresh_promote_total' "$DIR/metrics.txt" || {
    echo "refresh-smoke: refresh_promote_total missing from /metrics" >&2; exit 1; }
grep -q 'refresh_rollback_total' "$DIR/metrics.txt" || {
    echo "refresh-smoke: refresh_rollback_total missing from /metrics" >&2; exit 1; }

echo "refresh-smoke: OK (drift -> canary -> promote, break -> canary -> rollback, $REQS/$REQS requests answered)"
