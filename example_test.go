package resilex_test

import (
	"context"
	"fmt"
	"strings"

	"resilex"
)

// The full lifecycle on abstract tokens: parse, check, maximize, extract.
func ExampleMaximize() {
	tab := resilex.NewTable()
	x, err := resilex.ParseExpr("q p <p> .*", tab, resilex.Alphabet{}, resilex.Options{})
	if err != nil {
		panic(err)
	}
	unamb, _ := x.Unambiguous()
	maximal, _ := x.Maximal()
	fmt.Println("unambiguous:", unamb, "maximal:", maximal)

	y, err := resilex.Maximize(x)
	if err != nil {
		panic(err)
	}
	maximal, _ = y.Maximal()
	fmt.Println("after Maximize, maximal:", maximal)

	doc, _ := resilex.ParseTokens("q q q p p q", tab)
	pos, ok := y.Extract(doc)
	fmt.Println("extracted position:", pos, ok)
	// Output:
	// unambiguous: true maximal: false
	// after Maximize, maximal: true
	// extracted position: 4 true
}

// Training an HTML wrapper from marked samples and running it on a page
// the wrapper never saw.
func ExampleTrain() {
	sample1 := `<h1>Shop</h1><form><input type="image"><input type="text" data-target></form>`
	sample2 := `<table><tr><td><h1>Shop</h1></td></tr><tr><td>` +
		`<form><input type="image"><input type="text" data-target></form></td></tr></table>`
	w, err := resilex.Train([]resilex.Sample{
		{HTML: sample1, Target: resilex.TargetMarker()},
		{HTML: sample2, Target: resilex.TargetMarker()},
	}, resilex.Config{})
	if err != nil {
		panic(err)
	}
	novel := `<table><tr><td><h1>Shop</h1></td></tr><tr><td>SALE</td></tr><tr><td>` +
		`<form><input type="image"><input type="text"></form></td></tr></table>`
	r, err := w.Extract(novel)
	if err != nil {
		panic(err)
	}
	fmt.Println(r.Source)
	// Output:
	// <input type="text">
}

// Streaming extraction: the same wrapper fed from an io.Reader chunk by
// chunk. The page is never materialized — tokenization and matching run in
// one forward pass, so memory stays constant however large the page is,
// and the result is identical to Extract's.
func ExampleWrapper_Stream() {
	sample1 := `<h1>Shop</h1><form><input type="image"><input type="text" data-target></form>`
	sample2 := `<table><tr><td><h1>Shop</h1></td></tr><tr><td>` +
		`<form><input type="image"><input type="text" data-target></form></td></tr></table>`
	w, err := resilex.Train([]resilex.Sample{
		{HTML: sample1, Target: resilex.TargetMarker()},
		{HTML: sample2, Target: resilex.TargetMarker()},
	}, resilex.Config{})
	if err != nil {
		panic(err)
	}
	se, err := w.Stream()
	if err != nil {
		panic(err)
	}
	novel := `<table><tr><td><h1>Shop</h1></td></tr><tr><td>SALE</td></tr><tr><td>` +
		`<form><input type="image"><input type="text"></form></td></tr></table>`
	r, err := se.ExtractReader(context.Background(), strings.NewReader(novel))
	if err != nil {
		panic(err)
	}
	fmt.Println(r.Source)
	// Output:
	// <input type="text">
}

// Ambiguity diagnostics: the witness shows a concrete page the robot would
// be confused by.
func ExampleExpr_AmbiguityWitness() {
	tab := resilex.NewTable()
	x, err := resilex.ParseExpr("p* <p> p*", tab, resilex.Alphabet{}, resilex.Options{})
	if err != nil {
		panic(err)
	}
	w, ok, err := x.AmbiguityWitness()
	if err != nil {
		panic(err)
	}
	fmt.Println("ambiguous:", ok)
	fmt.Println("witness has", len(x.Splits(w)), "valid extraction positions")
	// Output:
	// ambiguous: true
	// witness has 2 valid extraction positions
}

// Tuple wrappers extract whole records.
func ExampleTrainTuple() {
	sample := `<table><tr><td data-target>bolt M4</td><td data-target>$0.10</td></tr></table>`
	w, err := resilex.TrainTuple([]resilex.Sample{{HTML: sample}}, resilex.Config{KeepText: true})
	if err != nil {
		panic(err)
	}
	live := `<table><tr><td>nut M5</td><td>$0.07</td></tr></table>`
	regions, err := w.Extract(live)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(regions), "slots")
	// Output:
	// 2 slots
}
