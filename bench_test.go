// Benchmarks regenerating the experiment series of EXPERIMENTS.md — one
// benchmark (family) per experiment E1..E12. Run with:
//
//	go test -bench=. -benchmem
//
// Absolute times are machine-dependent; the *shapes* (polynomial vs
// exponential growth, who wins by what factor) are the reproduction target.
package resilex_test

import (
	"fmt"
	"math/rand"
	"testing"

	"resilex"
	"resilex/internal/bench"
	"resilex/internal/extract"
	"resilex/internal/lang"
	"resilex/internal/learn"
	"resilex/internal/machine"
	"resilex/internal/perturb"
	"resilex/internal/rx"
	"resilex/internal/symtab"
	"resilex/internal/wrapper"
)

// --- E1: Figure 1 extraction throughput ------------------------------------

const benchPage1 = `<P><H1>Virtual Supplier, Inc.</H1><P>
<form method="post" action="search.cgi">
<input type="image" src="search.gif" />
<input type="text" size="15" name="value" data-target />
<input type="radio" name="attr" value="1" checked>
<input type="radio" name="attr" value="2">
</form>`

const benchPage2 = `<table>
<tr><td><h1>Virtual Supplier, Inc.</h1></td></tr>
<tr><td><a href="cust.html">Customer Service</a></td></tr>
<tr><td><form method="post" action="search.cgi">
<input type="image" src="search.gif" />
<input type="text" size="15" name="value" data-target />
<input type="radio" name="attr" value="1" checked>
</form></td></tr>
</table>`

func BenchmarkE1Figure1(b *testing.B) {
	w, err := resilex.Train([]resilex.Sample{
		{HTML: benchPage1, Target: resilex.TargetMarker()},
		{HTML: benchPage2, Target: resilex.TargetMarker()},
	}, resilex.Config{Skip: []string{"BR"}})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("train", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := resilex.Train([]resilex.Sample{
				{HTML: benchPage1, Target: resilex.TargetMarker()},
				{HTML: benchPage2, Target: resilex.TargetMarker()},
			}, resilex.Config{Skip: []string{"BR"}})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("extract", func(b *testing.B) {
		b.SetBytes(int64(len(benchPage2)))
		for i := 0; i < b.N; i++ {
			if _, err := w.Extract(benchPage2); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E2: the Section 7 pipeline ---------------------------------------------

func BenchmarkE2Section7(b *testing.B) {
	tab := symtab.NewTable()
	sigma := symtab.NewAlphabet(tab.InternAll(
		"P", "H1", "/H1", "FORM", "/FORM", "INPUT",
		"TABLE", "/TABLE", "TR", "/TR", "TD", "/TD", "TH", "/TH", "IMG", "A", "/A")...)
	const expr10 = "((P H1 /H1 P) | (TABLE TR TH IMG /TH /TR TR TD H1 /H1 /TD /TR TR TD A /A /TD /TR TR TD)) " +
		"FORM INPUT <INPUT> .*"
	x, err := extract.Parse(expr10, tab, sigma, machine.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("pivot-maximize", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := extract.Pivot(x); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("direct-algorithm-6.2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := extract.LeftFilter(x); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E3: ambiguity testing vs size (Theorem 5.6) ----------------------------

func BenchmarkE3Ambiguity(b *testing.B) {
	e := bench.NewEnv()
	for _, size := range []int{4, 8, 16, 32, 64, 128, 256} {
		rng := rand.New(rand.NewSource(int64(size)))
		x := e.UnambiguousExpr(size, rng)
		b.Run(fmt.Sprintf("n=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := x.Unambiguous(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E4: maximality-testing blow-up (Theorem 5.12 / Lemma 5.9) --------------

func BenchmarkE4Maximality(b *testing.B) {
	e := bench.NewEnv()
	for _, n := range []int{2, 4, 6, 8, 10, 12, 14} {
		expr, sigma := e.PSPACEWitness(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				nfa, err := machine.Compile(expr, sigma, machine.Options{})
				if err != nil {
					b.Fatal(err)
				}
				d, err := machine.Determinize(nfa, machine.Options{})
				if err != nil {
					b.Fatal(err)
				}
				// The universality check at the heart of Corollary 5.8.
				if machine.Minimize(d).IsUniversal() {
					b.Fatal("witness family is never universal")
				}
			}
		})
	}
}

// --- E5: non-unique maximization (Example 4.7) -------------------------------

func BenchmarkE5Maximize(b *testing.B) {
	e := bench.NewEnv()
	x, err := extract.Parse("q p <p> .*", e.Tab, e.Sigma, machine.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := extract.LeftFilter(x); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E6: Algorithm 6.2 vs p-bound n (Proposition 6.5) ------------------------

func BenchmarkE6LeftFilter(b *testing.B) {
	e := bench.NewEnv()
	for _, n := range []int{0, 1, 2, 4, 8, 16} {
		x := e.BoundedPExpr(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := extract.LeftFilter(x); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E7: pivot maximization on the unbounded family --------------------------

func BenchmarkE7Pivot(b *testing.B) {
	e := bench.NewEnv()
	for _, k := range []int{1, 2, 4, 6} {
		x := e.PivotExpr(k)
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := extract.Pivot(x); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E8: resilience scoring under the change model ---------------------------

func BenchmarkE8Resilience(b *testing.B) {
	tab := symtab.NewTable()
	base, err := rx.ParseWord("P H1 /H1 P FORM INPUT INPUT P INPUT INPUT /FORM", tab)
	if err != nil {
		b.Fatal(err)
	}
	p := perturb.New(tab, 3)
	sigma := symtab.NewAlphabet(base...).Union(p.Alphabet())
	w, err := wrapper.TrainTokens(tab, []learn.Example{{Doc: base, Target: 6}}, sigma, wrapper.Config{})
	if err != nil {
		b.Fatal(err)
	}
	type trial struct {
		doc []symtab.Symbol
		tgt int
	}
	var corpus []trial
	for i := 0; i < 1000; i++ {
		doc, tgt, _ := p.Apply(base, 6, 1+i%6)
		corpus = append(corpus, trial{doc, tgt})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := corpus[i%len(corpus)]
		w.ExtractTokens(tr.doc)
	}
}

// --- E9: the two unambiguity deciders ----------------------------------------

func BenchmarkE9TwoTests(b *testing.B) {
	e := bench.NewEnv()
	rng := rand.New(rand.NewSource(9))
	x := e.UnambiguousExpr(32, rng)
	marker := e.Tab.Intern("MARKSYM")
	b.Run("factoring-prop-5.4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := x.Unambiguous(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("marker-prop-5.5", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := x.UnambiguousMarker(marker); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E10: factoring cost (Lemma 5.2) ------------------------------------------

func BenchmarkE10Factoring(b *testing.B) {
	e := bench.NewEnv()
	for _, depth := range []int{2, 4, 6} {
		rng := rand.New(rand.NewSource(int64(depth)))
		l1, err := lang.FromRegex(e.RandomRegex(depth, rng), e.Sigma, machine.Options{})
		if err != nil {
			b.Fatal(err)
		}
		l2, err := lang.FromRegex(e.RandomRegex(depth, rng), e.Sigma, machine.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := l1.LeftFactor(l2); err != nil {
					b.Fatal(err)
				}
				if _, err := l1.RightFactor(l2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E11: middle-row extraction attempts --------------------------------------

func BenchmarkE11MiddleRow(b *testing.B) {
	tab := symtab.NewTable()
	tr := tab.Intern("TR")
	sigma := symtab.NewAlphabet(tr)
	x, err := extract.Parse("TR <TR> TR*", tab, sigma, machine.Options{})
	if err != nil {
		b.Fatal(err)
	}
	m, err := x.Compile()
	if err != nil {
		b.Fatal(err)
	}
	table := make([]symtab.Symbol, 1001)
	for i := range table {
		table[i] = tr
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Find(table)
	}
}

// --- E13: tuple (multi-slot) extraction — library extension --------------------

func BenchmarkE13Tuple(b *testing.B) {
	tab := symtab.NewTable()
	sigma := symtab.NewAlphabet(tab.InternAll("P", "FORM", "/FORM", "INPUT", "TABLE", "/TABLE")...)
	tp, err := extract.ParseTuple("[^ FORM]* FORM [^ INPUT]* <INPUT> [^ INPUT]* <INPUT> .*",
		tab, sigma, machine.Options{})
	if err != nil {
		b.Fatal(err)
	}
	doc, err := rx.ParseWord("TABLE P FORM INPUT INPUT INPUT /FORM /TABLE", tab)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("unambiguity", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tp.Unambiguous(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("extract", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok, err := tp.Extract(doc); err != nil || !ok {
				b.Fatal(err)
			}
		}
	})
}

// --- minimization ablation: Hopcroft vs Brzozowski vs derivatives ---------------

func BenchmarkMinimizationAblation(b *testing.B) {
	e := bench.NewEnv()
	two := symtab.NewAlphabet(e.Tab.Lookup("p"), e.Tab.Lookup("q"))
	for _, n := range []int{4, 8} {
		expr, _ := e.PSPACEWitness(n)
		nfa, err := machine.Compile(expr, two, machine.Options{})
		if err != nil {
			b.Fatal(err)
		}
		d, err := machine.Determinize(nfa, machine.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("hopcroft/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				machine.Minimize(d)
			}
		})
		b.Run(fmt.Sprintf("brzozowski/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := machine.MinimizeBrzozowski(d, machine.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("derivative-dfa/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dd, err := machine.DeterminizeDerivatives(expr, two, machine.Options{})
				if err != nil {
					b.Fatal(err)
				}
				machine.Minimize(dd)
			}
		})
	}
}

// --- streaming vs batch extraction (ablation) -----------------------------------

func BenchmarkStreaming(b *testing.B) {
	tab := symtab.NewTable()
	p, q := tab.Intern("p"), tab.Intern("q")
	sigma := symtab.NewAlphabet(p, q)
	x, err := extract.Parse("[^ p]* <p> .*", tab, sigma, machine.Options{})
	if err != nil {
		b.Fatal(err)
	}
	m, err := x.Compile()
	if err != nil {
		b.Fatal(err)
	}
	word := make([]symtab.Symbol, 10000)
	for i := range word {
		word[i] = q
	}
	word[9000] = p
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.Find(word)
		}
	})
	b.Run("stream", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, _ := m.Stream()
			for _, sym := range word {
				if _, found := s.Feed(sym); found {
					break
				}
			}
		}
	})
}

// --- E12: factoring-algebra identities (Lemma 6.3) -----------------------------

func BenchmarkE12Identities(b *testing.B) {
	e := bench.NewEnv()
	l1, err := lang.Parse("(q p)* q", e.Tab, e.Sigma, machine.Options{})
	if err != nil {
		b.Fatal(err)
	}
	l2, err := lang.Parse("q* p q*", e.Tab, e.Sigma, machine.Options{})
	if err != nil {
		b.Fatal(err)
	}
	pss, err := lang.Parse("p .*", e.Tab, e.Sigma, machine.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// (E1+E2)/(p·Σ*) = E1/(p·Σ*) + E2/(p·Σ*)
		u, err := l1.Union(l2)
		if err != nil {
			b.Fatal(err)
		}
		lhs, err := u.RightFactor(pss)
		if err != nil {
			b.Fatal(err)
		}
		a, _ := l1.RightFactor(pss)
		c, _ := l2.RightFactor(pss)
		rhs, _ := a.Union(c)
		if !lhs.Equal(rhs) {
			b.Fatal("Lemma 6.3(1) violated")
		}
	}
}
