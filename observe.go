package resilex

import (
	"context"
	"io"
	"log/slog"

	"resilex/internal/obs"
)

// Observability types, re-exported from internal/obs. The observability
// layer is dependency-free and nil-safe: a nil *Observer (or one with nil
// fields) accepts every call as a no-op, so instrumentation costs nothing
// when disabled.
type (
	// Observer bundles a metrics registry, a span tracer, and a structured
	// event logger. Inject one per process (or per experiment) and thread it
	// through contexts with WithObserver.
	Observer = obs.Observer
	// MetricsRegistry is a concurrency-safe named-metric store with
	// expvar-style JSON and Prometheus text exposition.
	MetricsRegistry = obs.Registry
	// Tracer records completed spans into a bounded ring buffer.
	Tracer = obs.Tracer
	// EventLogger is the pluggable structured event sink (default: none).
	EventLogger = obs.Logger
)

// NewObserver returns an observer with a fresh metrics registry and a
// default-capacity span tracer, and no event logger. Assign SlogLogger (or
// any EventLogger) to its Log field to receive structured events.
func NewObserver() *Observer { return obs.New() }

// WithObserver returns a context carrying the observer. Every construction,
// extraction, or supervised request run under the returned context records
// its metrics, spans, and events into the observer:
//
//	o := resilex.NewObserver()
//	ctx := resilex.WithObserver(context.Background(), o)
//	region, err := resilex.ExtractWithin(ctx, w, page)
//	o.Metrics.WritePrometheus(os.Stdout)
func WithObserver(ctx context.Context, o *Observer) context.Context {
	return obs.NewContext(ctx, o)
}

// ObserverFromContext returns the observer carried by ctx, or nil.
func ObserverFromContext(ctx context.Context) *Observer {
	return obs.FromContext(ctx)
}

// slogLogger adapts a *slog.Logger into an EventLogger: the event name
// becomes the message, the key/value pairs pass through as attributes.
type slogLogger struct{ l *slog.Logger }

// Event logs the event at Info level.
func (s slogLogger) Event(name string, kv ...any) { s.l.Info(name, kv...) }

// SlogLogger returns an EventLogger backed by the given slog logger (the
// default slog logger when nil). Assign it to Observer.Log:
//
//	o := resilex.NewObserver()
//	o.Log = resilex.SlogLogger(slog.New(slog.NewJSONHandler(os.Stderr, nil)))
func SlogLogger(l *slog.Logger) EventLogger {
	if l == nil {
		l = slog.Default()
	}
	return slogLogger{l: l}
}

// WriteObserverSnapshot writes the observer's combined state — the metric
// registry plus the buffered spans with durations and attributes — as one
// indented JSON document. This is the format the CLIs emit under --metrics.
func WriteObserverSnapshot(w io.Writer, o *Observer) error {
	return obs.WriteSnapshotJSON(w, o)
}
