package resilex

import (
	"context"
	"fmt"

	"resilex/internal/extract"
	"resilex/internal/htmltok"
	"resilex/internal/lang"
	"resilex/internal/learn"
	"resilex/internal/machine"
	"resilex/internal/perturb"
	"resilex/internal/rx"
	"resilex/internal/symtab"
	"resilex/internal/wrapper"
)

// guard is the facade's recover() backstop: no internal invariant failure
// may crash a caller — it surfaces as an error wrapping ErrInternal instead.
// Every facade entry point that can run the construction pipeline defers it.
func guard(err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("%w: %v", ErrInternal, r)
	}
}

// Core value types, re-exported from the implementation packages.
type (
	// Symbol is an interned token id.
	Symbol = symtab.Symbol
	// Table interns token names to Symbols.
	Table = symtab.Table
	// Alphabet is a finite token set Σ.
	Alphabet = symtab.Alphabet
	// Regex is a regular-expression AST over token symbols.
	Regex = rx.Node
	// Language is a regular language canonicalized to a minimal DFA.
	Language = lang.Language
	// Expr is an extraction expression E1⟨p⟩E2.
	Expr = extract.Expr
	// Matcher is a compiled extractor for one expression.
	Matcher = extract.Matcher
	// Decomposition is a pivot factoring of an expression's prefix.
	Decomposition = extract.Decomposition
	// Options bounds automaton construction (state budgets).
	Options = machine.Options
	// Example is a token-level training document with a marked target.
	Example = learn.Example
	// Wrapper is a trained, compiled HTML extractor.
	Wrapper = wrapper.Wrapper
	// Sample is one HTML training page with its marked target.
	Sample = wrapper.Sample
	// Target selects the element of interest in a Sample.
	Target = wrapper.Target
	// Config controls wrapper training.
	Config = wrapper.Config
	// Region is an extraction result on a live page.
	Region = wrapper.Region
	// StreamExtractor extracts from chunked document streams in one
	// forward pass, without materializing the page (Wrapper.Stream).
	StreamExtractor = wrapper.StreamExtractor
	// StreamRegion is a streaming extraction result whose Source bytes
	// borrow a pooled buffer; see StreamExtractor.ExtractReaderTo.
	StreamRegion = wrapper.StreamRegion
	// Perturber generates seeded random page variants under the paper's
	// Section 3 change model, for resilience testing.
	Perturber = perturb.Perturber
	// Tuple is a multi-slot extraction expression E0⟨p1⟩E1…⟨pk⟩Ek.
	Tuple = extract.Tuple
	// TupleExample is a token-level training document with k marked targets.
	TupleExample = learn.TupleExample
	// TupleWrapper extracts a fixed-arity tuple of elements per page.
	TupleWrapper = wrapper.TupleWrapper
	// LabeledPage is a page with its expected extraction, for Evaluate.
	LabeledPage = wrapper.LabeledPage
	// Report aggregates a wrapper evaluation run.
	Report = wrapper.Report
	// Fleet is a registry of named wrappers (one per site) with shared
	// persistence — the operating unit of a multi-vendor shopbot.
	Fleet = wrapper.Fleet
)

// NewFleet returns an empty wrapper fleet.
func NewFleet() *Fleet { return wrapper.NewFleet() }

// LoadFleet restores a fleet persisted with Fleet.MarshalJSON.
func LoadFleet(data []byte, opt Options) (f *Fleet, err error) {
	defer guard(&err)
	return wrapper.LoadFleet(data, opt)
}

// NewPerturber returns a seeded Perturber over the standard HTML snippet
// vocabulary (see internal/perturb).
func NewPerturber(tab *Table, seed int64) *Perturber { return perturb.New(tab, seed) }

// HTMLPerturber applies the Section 3 change model directly to HTML source
// text, tracking the target element's byte span.
type HTMLPerturber = perturb.HTMLPerturber

// NewHTMLPerturber returns a seeded HTML-level perturber.
func NewHTMLPerturber(seed int64) *HTMLPerturber { return perturb.NewHTML(seed) }

// FindTag returns the byte span of the n-th occurrence of a tag in a page,
// for seeding HTMLPerturber.Apply.
var FindTag = perturb.FindTag

// Sentinel errors, re-exported for errors.Is. Together they form the
// library's failure taxonomy (see doc.go): every error returned by the
// facade wraps exactly one of these sentinels, so callers branch with
// errors.Is and never string-match.
var (
	ErrAmbiguous     = extract.ErrAmbiguous
	ErrUnbounded     = extract.ErrUnbounded
	ErrNotApplicable = extract.ErrNotApplicable
	ErrBudget        = machine.ErrBudget
	ErrNotExtracted  = wrapper.ErrNotExtracted

	// ErrNoMatch reports that a wrapper's expression did not parse the
	// page (alias of ErrNotExtracted under the taxonomy's canonical name).
	ErrNoMatch = wrapper.ErrNoMatch
	// ErrBudgetExceeded reports that an automaton construction hit its
	// MaxStates budget (canonical name for ErrBudget).
	ErrBudgetExceeded = machine.ErrBudget
	// ErrDeadlineExceeded reports that a construction or extraction was
	// abandoned because its context expired or was cancelled.
	ErrDeadlineExceeded = machine.ErrDeadline
	// ErrMalformedInput reports undecodable persisted wrappers/fleets or
	// pages the tokenizer cannot make sense of.
	ErrMalformedInput = wrapper.ErrMalformedInput
	// ErrUnknownKey reports an ExtractFrom against a site key with no
	// registered wrapper.
	ErrUnknownKey = wrapper.ErrUnknownKey
	// ErrQuarantined reports that a site's circuit breaker is open and the
	// supervisor refused to run its wrapper.
	ErrQuarantined = wrapper.ErrQuarantined
	// ErrInternal reports a recovered internal invariant failure — the
	// facade's recover() backstop converts panics into errors wrapping it.
	ErrInternal = wrapper.ErrInternal
)

// Self-healing runtime types, re-exported from internal/wrapper.
type (
	// Supervisor runs extractions through the degradation ladder — wrapper
	// → refresh → fleet probe → structured miss — with a per-site circuit
	// breaker.
	Supervisor = wrapper.Supervisor
	// SupervisorConfig tunes breaker thresholds, cooldowns, refresh retry
	// policy and the marker used for automatic refresh.
	SupervisorConfig = wrapper.SupervisorConfig
	// SiteHealth is a point-in-time snapshot of one site's breaker state
	// and success/failure counters.
	SiteHealth = wrapper.SiteHealth
	// SupervisorResult reports which ladder rung produced a region.
	SupervisorResult = wrapper.Result
	// MissReport is the typed error returned when every ladder rung fails.
	MissReport = wrapper.MissReport
	// Rung identifies a degradation-ladder level.
	Rung = wrapper.Rung
	// BreakerState is a circuit-breaker state (closed/open/half-open).
	BreakerState = wrapper.BreakerState
)

// Degradation-ladder rungs and breaker states.
const (
	RungWrapper = wrapper.RungWrapper
	RungRefresh = wrapper.RungRefresh
	RungProbe   = wrapper.RungProbe
	RungMiss    = wrapper.RungMiss

	BreakerClosed   = wrapper.BreakerClosed
	BreakerOpen     = wrapper.BreakerOpen
	BreakerHalfOpen = wrapper.BreakerHalfOpen
)

// NewSupervisor wraps a fleet in the self-healing runtime.
func NewSupervisor(f *Fleet, cfg SupervisorConfig) *Supervisor {
	return wrapper.NewSupervisor(f, cfg)
}

// NewTable returns an empty symbol table.
func NewTable() *Table { return symtab.NewTable() }

// NewAlphabet builds an alphabet from symbols.
func NewAlphabet(syms ...Symbol) Alphabet { return symtab.NewAlphabet(syms...) }

// ParseExpr parses an extraction expression in the concrete syntax, e.g.
// "[^ FORM]* FORM [^ INPUT]* INPUT [^ INPUT]* <INPUT> .*". Σ is the union of
// sigma and every token mentioned.
func ParseExpr(src string, tab *Table, sigma Alphabet, opt Options) (e Expr, err error) {
	defer guard(&err)
	return extract.Parse(src, tab, sigma, opt)
}

// ParseRegex parses a plain regular expression in the same syntax.
func ParseRegex(src string, tab *Table, sigma Alphabet) (*Regex, error) {
	return rx.Parse(src, tab, sigma)
}

// DTD is a parsed document type definition; its Vocabulary feeds
// Config.ExtraTags so wrappers cover a site's whole element vocabulary up
// front — the paper's §8 suggestion of DTD-guided learning.
type DTD = htmltok.DTD

// ParseDTD reads <!ELEMENT …> declarations from DTD source text.
func ParseDTD(src string) (*DTD, error) { return htmltok.ParseDTD(src) }

// PrintRegex renders a regex AST in the concrete syntax.
func PrintRegex(n *Regex, tab *Table) string { return rx.Print(n, tab) }

// ParseTokens parses a whitespace-separated token string (a document).
func ParseTokens(src string, tab *Table) ([]Symbol, error) {
	return rx.ParseWord(src, tab)
}

// ParseLanguage compiles a plain regular expression to a Language.
func ParseLanguage(src string, tab *Table, sigma Alphabet, opt Options) (l Language, err error) {
	defer guard(&err)
	return lang.Parse(src, tab, sigma, opt)
}

// Maximize synthesizes a maximal unambiguous generalization of the
// expression using the paper's algorithms (pivot framework first, then
// left- and right-filtering). See extract.Maximize.
func Maximize(e Expr) (out Expr, err error) {
	defer guard(&err)
	return extract.Maximize(e)
}

// LeftFilter runs Algorithm 6.2 (left-filtering maximization) directly.
func LeftFilter(e Expr) (out Expr, err error) {
	defer guard(&err)
	return extract.LeftFilter(e)
}

// RightFilter runs the mirror image of Algorithm 6.2.
func RightFilter(e Expr) (out Expr, err error) {
	defer guard(&err)
	return extract.RightFilter(e)
}

// Pivot runs the pivot maximization framework (Proposition 6.8).
func Pivot(e Expr) (out Expr, err error) {
	defer guard(&err)
	return extract.Pivot(e)
}

// PivotRight runs the mirror-image pivot framework on the suffix component.
func PivotRight(e Expr) (out Expr, err error) {
	defer guard(&err)
	return extract.PivotRight(e)
}

// PivotDecomposition reports the pivot factoring Pivot would use.
func PivotDecomposition(e Expr) (d Decomposition, err error) {
	defer guard(&err)
	return extract.PivotDecomposition(e)
}

// Compose concatenates two marked expressions per Proposition 6.7,
// preserving maximality and unambiguity.
func Compose(a, b Expr) (out Expr, err error) {
	defer guard(&err)
	return extract.Compose(a, b)
}

// Disambiguate repairs an ambiguous expression into an unambiguous one that
// still extracts every keep word at its original position (the paper's §8
// future-work procedure).
func Disambiguate(e Expr, keep [][]Symbol, maxRounds int) (out Expr, err error) {
	defer guard(&err)
	return extract.Disambiguate(e, keep, maxRounds)
}

// ParseTuple parses a multi-slot extraction expression, e.g.
// "[^ FORM]* FORM <INPUT> [^ /FORM]* <INPUT> .*".
func ParseTuple(src string, tab *Table, sigma Alphabet, opt Options) (t *Tuple, err error) {
	defer guard(&err)
	return extract.ParseTuple(src, tab, sigma, opt)
}

// MaximizeTuple maximizes a tuple expression segment-wise (see
// extract.MaximizeTuple for the exact guarantee).
func MaximizeTuple(t *Tuple) (out *Tuple, err error) {
	defer guard(&err)
	return extract.MaximizeTuple(t)
}

// InduceTuple generalizes tuple examples into an unambiguous tuple
// expression with the per-segment merge heuristic.
func InduceTuple(examples []TupleExample, sigma Alphabet, opt Options) (t *Tuple, err error) {
	defer guard(&err)
	return learn.InduceTuple(examples, sigma, opt)
}

// TrainTuple builds a tuple wrapper from HTML samples whose k target
// elements all carry the data-target attribute.
func TrainTuple(samples []Sample, cfg Config) (w *TupleWrapper, err error) {
	defer guard(&err)
	return wrapper.TrainTuple(samples, cfg)
}

// SimplifyRegex rewrites a regex AST with language-preserving algebraic
// rules, shrinking machine-generated expressions for display.
func SimplifyRegex(n *Regex) *Regex { return rx.Simplify(n) }

// Induce generalizes token-level examples into an unambiguous expression
// with the Section 7 merge heuristic (plus a disambiguation ladder).
func Induce(examples []Example, sigma Alphabet, opt Options) (e Expr, err error) {
	defer guard(&err)
	res, err := learn.Induce(examples, sigma, opt)
	if err != nil {
		return Expr{}, err
	}
	return res.Expr, nil
}

// Train builds a wrapper from marked HTML samples: tokenize → induce →
// maximize → compile.
func Train(samples []Sample, cfg Config) (w *Wrapper, err error) {
	defer guard(&err)
	return wrapper.Train(samples, cfg)
}

// TrainTokens builds a wrapper from token-level examples over tab.
func TrainTokens(tab *Table, examples []Example, sigma Alphabet, cfg Config) (w *Wrapper, err error) {
	defer guard(&err)
	return wrapper.TrainTokens(tab, examples, sigma, cfg)
}

// LoadWrapper restores a wrapper persisted with Wrapper.MarshalJSON.
func LoadWrapper(data []byte, opt Options) (w *Wrapper, err error) {
	defer guard(&err)
	return wrapper.Load(data, opt)
}

// LoadTupleWrapper restores a tuple wrapper persisted with
// TupleWrapper.MarshalJSON.
func LoadTupleWrapper(data []byte, opt Options) (w *TupleWrapper, err error) {
	defer guard(&err)
	return wrapper.LoadTuple(data, opt)
}

// IsTuplePayload reports whether persisted wrapper JSON holds a tuple
// wrapper; use it to pick between LoadWrapper and LoadTupleWrapper.
func IsTuplePayload(data []byte) bool { return wrapper.IsTuplePayload(data) }

// ExtractWithin runs a wrapper extraction bounded by ctx, with the facade's
// panic backstop: an expired or cancelled context fails fast with an error
// wrapping ErrDeadlineExceeded.
func ExtractWithin(ctx context.Context, w *Wrapper, html string) (r Region, err error) {
	defer guard(&err)
	return w.ExtractContext(ctx, html)
}

// ExtractRecordsWithin enumerates every extraction vector of a tuple
// wrapper over the page — one k-slot record per vector, in document order,
// computed by the one-pass multi-split spanner — bounded by ctx, with the
// facade's panic backstop.
func ExtractRecordsWithin(ctx context.Context, w *TupleWrapper, html string) (records [][]Region, err error) {
	defer guard(&err)
	return w.ExtractAllContext(ctx, html)
}

// RefreshWithin re-trains a wrapper on one more marked sample with the whole
// induce→maximize→compile pipeline bounded by ctx (and by the wrapper's
// state budget). On any error the original wrapper is untouched and usable.
func RefreshWithin(ctx context.Context, w *Wrapper, sample Sample) (fresh *Wrapper, err error) {
	defer guard(&err)
	return w.RefreshContext(ctx, sample)
}

// Target selector constructors.
var (
	// TargetIndex selects a token index in the sample.
	TargetIndex = wrapper.TargetIndex
	// TargetTag selects the n-th occurrence of an upper-case tag name.
	TargetTag = wrapper.TargetTag
	// TargetMarker selects the element carrying the data-target attribute.
	TargetMarker = wrapper.TargetMarker
)
