package resilex

import (
	"resilex/internal/extract"
	"resilex/internal/htmltok"
	"resilex/internal/lang"
	"resilex/internal/learn"
	"resilex/internal/machine"
	"resilex/internal/perturb"
	"resilex/internal/rx"
	"resilex/internal/symtab"
	"resilex/internal/wrapper"
)

// Core value types, re-exported from the implementation packages.
type (
	// Symbol is an interned token id.
	Symbol = symtab.Symbol
	// Table interns token names to Symbols.
	Table = symtab.Table
	// Alphabet is a finite token set Σ.
	Alphabet = symtab.Alphabet
	// Regex is a regular-expression AST over token symbols.
	Regex = rx.Node
	// Language is a regular language canonicalized to a minimal DFA.
	Language = lang.Language
	// Expr is an extraction expression E1⟨p⟩E2.
	Expr = extract.Expr
	// Matcher is a compiled extractor for one expression.
	Matcher = extract.Matcher
	// Decomposition is a pivot factoring of an expression's prefix.
	Decomposition = extract.Decomposition
	// Options bounds automaton construction (state budgets).
	Options = machine.Options
	// Example is a token-level training document with a marked target.
	Example = learn.Example
	// Wrapper is a trained, compiled HTML extractor.
	Wrapper = wrapper.Wrapper
	// Sample is one HTML training page with its marked target.
	Sample = wrapper.Sample
	// Target selects the element of interest in a Sample.
	Target = wrapper.Target
	// Config controls wrapper training.
	Config = wrapper.Config
	// Region is an extraction result on a live page.
	Region = wrapper.Region
	// Perturber generates seeded random page variants under the paper's
	// Section 3 change model, for resilience testing.
	Perturber = perturb.Perturber
	// Tuple is a multi-slot extraction expression E0⟨p1⟩E1…⟨pk⟩Ek.
	Tuple = extract.Tuple
	// TupleExample is a token-level training document with k marked targets.
	TupleExample = learn.TupleExample
	// TupleWrapper extracts a fixed-arity tuple of elements per page.
	TupleWrapper = wrapper.TupleWrapper
	// LabeledPage is a page with its expected extraction, for Evaluate.
	LabeledPage = wrapper.LabeledPage
	// Report aggregates a wrapper evaluation run.
	Report = wrapper.Report
	// Fleet is a registry of named wrappers (one per site) with shared
	// persistence — the operating unit of a multi-vendor shopbot.
	Fleet = wrapper.Fleet
)

// NewFleet returns an empty wrapper fleet.
func NewFleet() *Fleet { return wrapper.NewFleet() }

// LoadFleet restores a fleet persisted with Fleet.MarshalJSON.
func LoadFleet(data []byte, opt Options) (*Fleet, error) { return wrapper.LoadFleet(data, opt) }

// NewPerturber returns a seeded Perturber over the standard HTML snippet
// vocabulary (see internal/perturb).
func NewPerturber(tab *Table, seed int64) *Perturber { return perturb.New(tab, seed) }

// HTMLPerturber applies the Section 3 change model directly to HTML source
// text, tracking the target element's byte span.
type HTMLPerturber = perturb.HTMLPerturber

// NewHTMLPerturber returns a seeded HTML-level perturber.
func NewHTMLPerturber(seed int64) *HTMLPerturber { return perturb.NewHTML(seed) }

// FindTag returns the byte span of the n-th occurrence of a tag in a page,
// for seeding HTMLPerturber.Apply.
var FindTag = perturb.FindTag

// Sentinel errors, re-exported for errors.Is.
var (
	ErrAmbiguous     = extract.ErrAmbiguous
	ErrUnbounded     = extract.ErrUnbounded
	ErrNotApplicable = extract.ErrNotApplicable
	ErrBudget        = machine.ErrBudget
	ErrNotExtracted  = wrapper.ErrNotExtracted
)

// NewTable returns an empty symbol table.
func NewTable() *Table { return symtab.NewTable() }

// NewAlphabet builds an alphabet from symbols.
func NewAlphabet(syms ...Symbol) Alphabet { return symtab.NewAlphabet(syms...) }

// ParseExpr parses an extraction expression in the concrete syntax, e.g.
// "[^ FORM]* FORM [^ INPUT]* INPUT [^ INPUT]* <INPUT> .*". Σ is the union of
// sigma and every token mentioned.
func ParseExpr(src string, tab *Table, sigma Alphabet, opt Options) (Expr, error) {
	return extract.Parse(src, tab, sigma, opt)
}

// ParseRegex parses a plain regular expression in the same syntax.
func ParseRegex(src string, tab *Table, sigma Alphabet) (*Regex, error) {
	return rx.Parse(src, tab, sigma)
}

// DTD is a parsed document type definition; its Vocabulary feeds
// Config.ExtraTags so wrappers cover a site's whole element vocabulary up
// front — the paper's §8 suggestion of DTD-guided learning.
type DTD = htmltok.DTD

// ParseDTD reads <!ELEMENT …> declarations from DTD source text.
func ParseDTD(src string) (*DTD, error) { return htmltok.ParseDTD(src) }

// PrintRegex renders a regex AST in the concrete syntax.
func PrintRegex(n *Regex, tab *Table) string { return rx.Print(n, tab) }

// ParseTokens parses a whitespace-separated token string (a document).
func ParseTokens(src string, tab *Table) ([]Symbol, error) {
	return rx.ParseWord(src, tab)
}

// ParseLanguage compiles a plain regular expression to a Language.
func ParseLanguage(src string, tab *Table, sigma Alphabet, opt Options) (Language, error) {
	return lang.Parse(src, tab, sigma, opt)
}

// Maximize synthesizes a maximal unambiguous generalization of the
// expression using the paper's algorithms (pivot framework first, then
// left- and right-filtering). See extract.Maximize.
func Maximize(e Expr) (Expr, error) { return extract.Maximize(e) }

// LeftFilter runs Algorithm 6.2 (left-filtering maximization) directly.
func LeftFilter(e Expr) (Expr, error) { return extract.LeftFilter(e) }

// RightFilter runs the mirror image of Algorithm 6.2.
func RightFilter(e Expr) (Expr, error) { return extract.RightFilter(e) }

// Pivot runs the pivot maximization framework (Proposition 6.8).
func Pivot(e Expr) (Expr, error) { return extract.Pivot(e) }

// PivotRight runs the mirror-image pivot framework on the suffix component.
func PivotRight(e Expr) (Expr, error) { return extract.PivotRight(e) }

// PivotDecomposition reports the pivot factoring Pivot would use.
func PivotDecomposition(e Expr) (Decomposition, error) {
	return extract.PivotDecomposition(e)
}

// Compose concatenates two marked expressions per Proposition 6.7,
// preserving maximality and unambiguity.
func Compose(a, b Expr) (Expr, error) { return extract.Compose(a, b) }

// Disambiguate repairs an ambiguous expression into an unambiguous one that
// still extracts every keep word at its original position (the paper's §8
// future-work procedure).
func Disambiguate(e Expr, keep [][]Symbol, maxRounds int) (Expr, error) {
	return extract.Disambiguate(e, keep, maxRounds)
}

// ParseTuple parses a multi-slot extraction expression, e.g.
// "[^ FORM]* FORM <INPUT> [^ /FORM]* <INPUT> .*".
func ParseTuple(src string, tab *Table, sigma Alphabet, opt Options) (*Tuple, error) {
	return extract.ParseTuple(src, tab, sigma, opt)
}

// MaximizeTuple maximizes a tuple expression segment-wise (see
// extract.MaximizeTuple for the exact guarantee).
func MaximizeTuple(t *Tuple) (*Tuple, error) { return extract.MaximizeTuple(t) }

// InduceTuple generalizes tuple examples into an unambiguous tuple
// expression with the per-segment merge heuristic.
func InduceTuple(examples []TupleExample, sigma Alphabet, opt Options) (*Tuple, error) {
	return learn.InduceTuple(examples, sigma, opt)
}

// TrainTuple builds a tuple wrapper from HTML samples whose k target
// elements all carry the data-target attribute.
func TrainTuple(samples []Sample, cfg Config) (*TupleWrapper, error) {
	return wrapper.TrainTuple(samples, cfg)
}

// SimplifyRegex rewrites a regex AST with language-preserving algebraic
// rules, shrinking machine-generated expressions for display.
func SimplifyRegex(n *Regex) *Regex { return rx.Simplify(n) }

// Induce generalizes token-level examples into an unambiguous expression
// with the Section 7 merge heuristic (plus a disambiguation ladder).
func Induce(examples []Example, sigma Alphabet, opt Options) (Expr, error) {
	res, err := learn.Induce(examples, sigma, opt)
	if err != nil {
		return Expr{}, err
	}
	return res.Expr, nil
}

// Train builds a wrapper from marked HTML samples: tokenize → induce →
// maximize → compile.
func Train(samples []Sample, cfg Config) (*Wrapper, error) {
	return wrapper.Train(samples, cfg)
}

// TrainTokens builds a wrapper from token-level examples over tab.
func TrainTokens(tab *Table, examples []Example, sigma Alphabet, cfg Config) (*Wrapper, error) {
	return wrapper.TrainTokens(tab, examples, sigma, cfg)
}

// LoadWrapper restores a wrapper persisted with Wrapper.MarshalJSON.
func LoadWrapper(data []byte, opt Options) (*Wrapper, error) {
	return wrapper.Load(data, opt)
}

// LoadTupleWrapper restores a tuple wrapper persisted with
// TupleWrapper.MarshalJSON.
func LoadTupleWrapper(data []byte, opt Options) (*TupleWrapper, error) {
	return wrapper.LoadTuple(data, opt)
}

// IsTuplePayload reports whether persisted wrapper JSON holds a tuple
// wrapper; use it to pick between LoadWrapper and LoadTupleWrapper.
func IsTuplePayload(data []byte) bool { return wrapper.IsTuplePayload(data) }

// Target selector constructors.
var (
	// TargetIndex selects a token index in the sample.
	TargetIndex = wrapper.TargetIndex
	// TargetTag selects the n-th occurrence of an upper-case tag name.
	TargetTag = wrapper.TargetTag
	// TargetMarker selects the element carrying the data-target attribute.
	TargetMarker = wrapper.TargetMarker
)
