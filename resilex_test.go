package resilex_test

import (
	"errors"
	"strings"
	"testing"

	"resilex"
)

const page1 = `<p><h1>Shop</h1><form action="s.cgi">` +
	`<input type="image"><input type="text" data-target><input type="radio"></form>`

const page2 = `<table><tr><td><h1>Shop</h1></td></tr><tr><td>` +
	`<form action="s.cgi"><input type="image"><input type="text" data-target>` +
	`<input type="radio"></form></td></tr></table>`

func TestFacadeTrainExtract(t *testing.T) {
	// ExtraTags widens Σ to tags a future redesign might introduce.
	w, err := resilex.Train([]resilex.Sample{
		{HTML: page1, Target: resilex.TargetMarker()},
		{HTML: page2, Target: resilex.TargetMarker()},
	}, resilex.Config{ExtraTags: []string{"DIV", "/DIV", "HR"}})
	if err != nil {
		t.Fatal(err)
	}
	novel := `<div><h1>Shop</h1></div><form action="s.cgi">` +
		`<input type="image"><input type="text"><input type="radio"></form><hr>`
	r, err := w.Extract(novel)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Source, `type="text"`) {
		t.Errorf("extracted %q", r.Source)
	}
	if _, err := w.Extract(`<p>empty</p>`); !errors.Is(err, resilex.ErrNotExtracted) {
		t.Errorf("miss error = %v", err)
	}
}

func TestFacadeExpressions(t *testing.T) {
	tab := resilex.NewTable()
	x, err := resilex.ParseExpr("q p <p> .*", tab, resilex.Alphabet{}, resilex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	unamb, err := x.Unambiguous()
	if err != nil || !unamb {
		t.Fatalf("unambiguous = %v, %v", unamb, err)
	}
	maxed, err := resilex.Maximize(x)
	if err != nil {
		t.Fatal(err)
	}
	m, err := maxed.Maximal()
	if err != nil || !m {
		t.Fatalf("maximal = %v, %v", m, err)
	}
	if g, err := maxed.Generalizes(x); err != nil || !g {
		t.Fatalf("generalizes = %v, %v", g, err)
	}
	// Ambiguity surfaces as ErrAmbiguous.
	bad, err := resilex.ParseExpr("p* <p> p*", tab, resilex.Alphabet{}, resilex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := resilex.Maximize(bad); !errors.Is(err, resilex.ErrAmbiguous) {
		t.Errorf("err = %v", err)
	}
}

func TestFacadeLanguageAndTokens(t *testing.T) {
	tab := resilex.NewTable()
	l, err := resilex.ParseLanguage("(p q)*", tab, resilex.Alphabet{}, resilex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w, err := resilex.ParseTokens("p q p q", tab)
	if err != nil {
		t.Fatal(err)
	}
	if !l.Contains(w) {
		t.Error("language misses pqpq")
	}
	re, err := resilex.ParseRegex("p | q", tab, resilex.Alphabet{})
	if err != nil || re == nil {
		t.Fatalf("ParseRegex: %v", err)
	}
}

func TestFacadePersistence(t *testing.T) {
	w, err := resilex.Train([]resilex.Sample{
		{HTML: page1, Target: resilex.TargetMarker()},
	}, resilex.Config{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := w.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	w2, err := resilex.LoadWrapper(data, resilex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := w.Extract(page1)
	r2, _ := w2.Extract(page1)
	if r1.Span != r2.Span {
		t.Error("loaded wrapper differs")
	}
}

func TestFacadeInduce(t *testing.T) {
	tab := resilex.NewTable()
	d1, _ := resilex.ParseTokens("P FORM INPUT INPUT /FORM", tab)
	d2, _ := resilex.ParseTokens("DIV P FORM INPUT INPUT /FORM /DIV", tab)
	x, err := resilex.Induce([]resilex.Example{
		{Doc: d1, Target: 3},
		{Doc: d2, Target: 4},
	}, resilex.NewAlphabet(), resilex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pos, ok := x.Extract(d2); !ok || pos != 4 {
		t.Errorf("extract = (%d, %v)", pos, ok)
	}
}
