// Quickstart: the resilient-extraction lifecycle — rigid expression breaks
// on a redesign; merging two samples and maximizing produces an expression
// that provably cannot be generalized further and survives novel layouts.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"resilex"
)

func main() {
	tab := resilex.NewTable()
	opt := resilex.Options{}

	// Σ: the tag vocabulary our pages may use. Expressions are always
	// relative to an explicit finite alphabet — '.*' means Σ*, so tags
	// outside Σ make a page unparseable by design.
	sigmaTokens, err := resilex.ParseTokens(
		"P H1 /H1 FORM /FORM INPUT TABLE /TABLE TR /TR TD /TD A /A", tab)
	if err != nil {
		log.Fatal(err)
	}
	sigma := resilex.NewAlphabet(sigmaTokens...)

	doc := func(s string) []resilex.Symbol {
		w, err := resilex.ParseTokens(s, tab)
		if err != nil {
			log.Fatal(err)
		}
		return w
	}
	// Two variants of the same catalog page; the target is the second INPUT
	// of the search form (index 6 and 9).
	page1 := doc("P H1 /H1 P FORM INPUT INPUT INPUT /FORM")
	page2 := doc("TABLE TR TD H1 /H1 /TD /TR TR TD FORM INPUT INPUT INPUT /FORM /TD /TR /TABLE")

	// 1. A rigid expression from page1 alone.
	rigid, err := resilex.ParseExpr("P H1 /H1 P FORM INPUT <INPUT> .*", tab, sigma, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rigid:     ", rigid.String(tab))
	_, ok := rigid.Extract(page2)
	fmt.Printf("            parses the redesigned page: %v  (brittle)\n", ok)

	// 2. Induce from both examples: the merging heuristic keeps the shared
	//    anchors and unions the rest (paper, Section 7).
	merged, err := resilex.Induce([]resilex.Example{
		{Doc: page1, Target: 6},
		{Doc: page2, Target: 11},
	}, sigma, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("merged:    ", merged.String(tab))
	unamb, err := merged.Unambiguous()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("            unambiguous:", unamb)

	// 3. Maximize: the most general unambiguous expression above it in the
	//    resilience order (Algorithm 6.2 via the pivot framework).
	maxed, err := resilex.Maximize(merged)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("maximized: ", maxed.String(tab))
	m, err := maxed.Maximal()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("            provably maximal:", m)

	// 4. A third layout neither expression ever saw.
	novel := doc("TABLE TR TD A /A /TD /TR TR TD H1 /H1 /TD /TR TR TD P FORM INPUT INPUT /FORM /TD /TR /TABLE")
	pos, ok := maxed.Extract(novel)
	fmt.Printf("novel page: extracted token %d (ok=%v) — the second INPUT, resilient\n", pos, ok)
	if !ok || novel[pos] != tab.Lookup("INPUT") {
		log.Fatal("extraction failed on the novel page")
	}
}
