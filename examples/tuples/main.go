// Tuples: harvesting (part-name, price) pairs from a vendor's price table.
// Real shopbots extract records, not single cells; this example trains a
// two-slot tuple wrapper — the library's lift of the paper's single-mark
// model — and runs it against a page the wrapper never saw, where extra
// header rows and decoration were added.
//
//	go run ./examples/tuples
package main

import (
	"fmt"
	"log"

	"resilex"
)

// Training samples: the first data row's name and price cells are marked.
const priceList1 = `<h1>Bolt Bazaar — Price List</h1>
<table>
<tr><td data-target>hex bolt M4</td><td data-target>$0.10</td></tr>
<tr><td>hex bolt M5</td><td>$0.12</td></tr>
</table>`

const priceList2 = `<p>Prices updated daily.</p>
<table>
<tr><th>part</th><th>price</th></tr>
<tr><td data-target>hex bolt M4</td><td data-target>$0.11</td></tr>
<tr><td>hex bolt M5</td><td>$0.13</td></tr>
</table>`

// Today's page: new banner, reordered decorations, new parts.
const livePage = `<h1>Bolt Bazaar — Price List</h1>
<p>SALE! Prices updated daily.</p>
<table>
<tr><th>part</th><th>price</th></tr>
<tr><td>locknut M4</td><td>$0.07</td></tr>
<tr><td>washer M4</td><td>$0.02</td></tr>
</table>`

func main() {
	w, err := resilex.TrainTuple([]resilex.Sample{
		{HTML: priceList1},
		{HTML: priceList2},
	}, resilex.Config{KeepText: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained a %d-slot tuple wrapper:\n  %s\n\n", w.Arity(), w.String())

	regions, err := w.Extract(livePage)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("first data row of today's page:")
	labels := []string{"part ", "price"}
	for j, r := range regions {
		fmt.Printf("  %s → bytes [%3d,%3d): %s\n", labels[j], r.Span.Start, r.Span.End, r.Source)
	}
}
