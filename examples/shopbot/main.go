// Shopbot: the paper's motivating scenario (Figure 1 / Section 7) end to
// end at the HTML level. A price-comparison robot is trained on the
// "Virtual Supplier" search page; the site is then redesigned — the form
// moves into a table, rows are added — and the robot still finds the query
// input. The trained wrapper is persisted to JSON and reloaded, as a real
// shopbot fleet would distribute it.
//
//	go run ./examples/shopbot
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"resilex"
)

// The original page (Figure 1, top). The robot's target — the text input
// where the search keywords go — is marked with data-target for training.
const originalPage = `<P>
<H1>Virtual Supplier, Inc.</H1>
<P>
<form method="post" action="search.cgi">
<input type="image" align="left" src="search.gif" />
<input type="text" size="15" name="value" data-target />
<br />
<input type="radio" name="attr" value="1" checked> Keywords<br />
<input type="radio" name="attr" value="2"> Manufacturer Part#
</form>`

// The redesigned page (Figure 1, bottom): the form is embedded in a table
// and a customer-service row was added.
const redesignedPage = `<table>
<tr><th><img src="supplier.gif"></th></tr>
<tr><td><h1>Virtual Supplier, Inc.</h1></td></tr>
<tr><td><a href="cust.html">Customer Service</a></td></tr>
<tr><td><form method="post" action="search.cgi">
<input type="image" src="search.gif" />
<input type="text" size="15" name="value" data-target />
<input type="radio" name="attr" value="1" checked> Keywords<br />
<input type="radio" name="attr" value="2"> Manufacturer Part#
</form></td></tr>
</table>`

// A third redesign the robot never saw: extra promotional rows, a footer.
const futurePage = `<table>
<tr><td><h1>Virtual Supplier, Inc.</h1></td></tr>
<tr><td><a href="deals.html">Hot Deals!</a></td></tr>
<tr><td><a href="cust.html">Customer Service</a></td></tr>
<tr><td><form method="post" action="search.cgi">
<input type="image" src="search.gif" />
<input type="text" size="15" name="value" />
<input type="radio" name="attr" value="1"> Keywords
</form></td></tr>
<tr><td><a href="legal.html">fine print</a></td></tr>
</table>`

func main() {
	// Train on the two Figure 1 variants. BR is presentation noise.
	w, err := resilex.Train([]resilex.Sample{
		{HTML: originalPage, Target: resilex.TargetMarker()},
		{HTML: redesignedPage, Target: resilex.TargetMarker()},
	}, resilex.Config{Skip: []string{"BR"}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training strategy: ", w.Strategy())
	fmt.Println("wrapper expression:", w.String())
	fmt.Println()

	// Persist and reload, as a deployed robot would.
	data, err := json.MarshalIndent(w, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(os.TempDir(), "virtual-supplier-wrapper.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrapper persisted to %s (%d bytes)\n\n", path, len(data))
	robot, err := resilex.LoadWrapper(data, resilex.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// The robot visits all three page generations.
	pages := []struct{ name, html string }{
		{"original page   ", originalPage},
		{"redesigned page ", redesignedPage},
		{"future redesign ", futurePage},
	}
	for _, p := range pages {
		r, err := robot.Extract(p.html)
		if err != nil {
			log.Fatalf("%s: %v", p.name, err)
		}
		fmt.Printf("%s → bytes [%4d,%4d): %s\n", p.name, r.Span.Start, r.Span.End, r.Source)
	}
	fmt.Println("\nthe robot filled the same search box on every generation of the site")
}
