// Resilience study: quantifies how much maximization buys. Three wrappers —
// rigid (one sample, no maximization), merged (two samples, no
// maximization) and maximized (two samples + the paper's Section 6
// algorithms) — face the same stream of randomly perturbed pages under the
// Section 3 change model, and we report the fraction of pages on which each
// still extracts the right element.
//
//	go run ./examples/resilience
package main

import (
	"fmt"
	"log"

	"resilex"
)

func main() {
	tab := resilex.NewTable()

	doc := func(s string) []resilex.Symbol {
		w, err := resilex.ParseTokens(s, tab)
		if err != nil {
			log.Fatal(err)
		}
		return w
	}
	base := doc("P H1 /H1 P FORM INPUT INPUT P INPUT INPUT /FORM")
	baseTarget := 6 // the second INPUT of the form
	variant := doc("TABLE TR TD FORM INPUT INPUT P INPUT INPUT /FORM /TD /TR /TABLE")
	variantTarget := 5

	pert := resilex.NewPerturber(tab, 2026)
	sigma := resilex.NewAlphabet(base...).
		Union(resilex.NewAlphabet(variant...)).
		Union(pert.Alphabet())

	examples := []resilex.Example{
		{Doc: base, Target: baseTarget},
		{Doc: variant, Target: variantTarget},
	}
	train := func(ex []resilex.Example, skipMax bool) *resilex.Wrapper {
		w, err := resilex.TrainTokens(tab, ex, sigma, resilex.Config{SkipMaximize: skipMax})
		if err != nil {
			log.Fatal(err)
		}
		return w
	}
	wrappers := []struct {
		name string
		w    *resilex.Wrapper
	}{
		{"rigid    ", train(examples[:1], true)},
		{"merged   ", train(examples, true)},
		{"maximized", train(examples, false)},
	}
	for _, e := range wrappers {
		fmt.Printf("%s: %s\n", e.name, e.w.String())
	}
	fmt.Println()

	const trialsPerLevel = 1000
	fmt.Printf("%-6s %-10s %-10s %-10s   (%d perturbed pages per level)\n",
		"edits", "rigid", "merged", "maximized", trialsPerLevel)
	for _, edits := range []int{1, 2, 3, 4, 6, 8} {
		// One shared corpus per level so every wrapper sees identical pages.
		type trial struct {
			doc []resilex.Symbol
			tgt int
		}
		var corpus []trial
		for i := 0; i < trialsPerLevel; i++ {
			d, tgt, _ := pert.Apply(base, baseTarget, edits)
			corpus = append(corpus, trial{d, tgt})
		}
		fmt.Printf("%-6d", edits)
		for _, e := range wrappers {
			hits := 0
			for _, tr := range corpus {
				if got, ok := e.w.ExtractTokens(tr.doc); ok && got == tr.tgt {
					hits++
				}
			}
			fmt.Printf(" %8.1f%%", 100*float64(hits)/float64(len(corpus)))
		}
		fmt.Println()
	}
	fmt.Println("\nmaximized wrappers survive layout drift that breaks rigid and merged ones")
}
