// Maintenance: the lifecycle of a deployed wrapper. The robot extracts for
// months; one day the vendor ships a redesign radical enough that even the
// maximized wrapper cannot parse it. An operator marks the target once on
// the new page and Refresh widens the wrapper *within the resilience order*
// — every page it used to handle keeps extracting identically (the ⪯
// guarantee), and the new layout family is learned and re-maximized.
//
//	go run ./examples/maintenance
package main

import (
	"errors"
	"fmt"
	"log"

	"resilex"
)

const gen1 = `<h1>MegaParts</h1>
<form action="q.cgi"><input type="hidden" name="sid">
<input type="text" name="q" data-target></form>`

const gen2 = `<table><tr><td><h1>MegaParts</h1></td></tr><tr><td>
<form action="q.cgi"><input type="hidden" name="sid">
<input type="text" name="q" data-target></form></td></tr></table>`

// The year-three redesign: everything is DIVs and SPANs now.
const gen3 = `<div id="hdr"><span>MegaParts</span></div>
<div class="searchbox">
<form action="q.cgi"><input type="hidden" name="sid">
<input type="text" name="q" data-target></form>
</div>`

// A later variant of the gen-3 family the robot must also survive.
const gen3b = `<div id="hdr"><span>MegaParts</span><span>since 1999</span></div>
<p>free shipping!</p>
<div class="searchbox">
<form action="q.cgi"><input type="hidden" name="sid">
<input type="text" name="q"></form>
</div>`

func main() {
	w, err := resilex.Train([]resilex.Sample{
		{HTML: gen1, Target: resilex.TargetMarker()},
		{HTML: gen2, Target: resilex.TargetMarker()},
	}, resilex.Config{
		Skip: []string{"BR"},
		// Redesign vocabulary the robot should tolerate without retraining.
		ExtraTags: []string{"P", "/P", "DIV", "/DIV", "SPAN", "/SPAN"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("deployed wrapper:", w.String())

	// Year three: the redesign breaks it.
	_, err = w.Extract(gen3)
	fmt.Println("gen-3 redesign parsed:", !errors.Is(err, resilex.ErrNotExtracted))

	// One marked sample refreshes the wrapper in place.
	w2, err := w.Refresh(resilex.Sample{HTML: gen3, Target: resilex.TargetMarker()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("refreshed wrapper:", w2.String())
	fmt.Println("strategy:         ", w2.Strategy())

	// It handles the new family, including variants it never saw…
	for _, page := range []string{gen3, gen3b} {
		r, err := w2.Extract(page)
		if err != nil {
			log.Fatalf("gen-3 family: %v", err)
		}
		fmt.Printf("gen-3 family  → %s\n", r.Source)
	}
	// …and the old generations still extract identically (the ⪯ guarantee).
	for i, page := range []string{gen1, gen2} {
		r1, err1 := w.Extract(page)
		r2, err2 := w2.Extract(page)
		if err1 != nil || err2 != nil || r1.Span != r2.Span {
			log.Fatalf("generation %d regressed after refresh", i+1)
		}
	}
	fmt.Println("older generations: unchanged extraction (monotone in ⪯)")
}
