// Catalog harvesting: one wrapper per vendor across a small fleet of
// synthetic catalog sites, each with its own layout conventions. The
// example shows two production features beyond the basic pipeline:
// attribute-refined token symbols (INPUT[type=text] vs INPUT[type=radio]),
// which let the wrapper target "the text input" regardless of how many
// radio buttons surround it, and per-vendor alphabets widened with
// ExtraTags for anticipated redesign vocabulary.
//
//	go run ./examples/catalog
package main

import (
	"fmt"
	"log"
	"strings"

	"resilex"
)

type vendor struct {
	name    string
	samples []string // training pages, target marked with data-target
	live    string   // today's page, unseen at training time
}

var vendors = []vendor{
	{
		name: "acme-parts",
		samples: []string{
			`<h1>ACME Parts</h1><form action="q.cgi">
			   <input type="hidden" name="sid">
			   <input type="text" name="q" data-target>
			   <input type="radio" name="cat"></form>`,
			`<table><tr><td><h1>ACME Parts</h1></td></tr><tr><td>
			   <form action="q.cgi"><input type="hidden" name="sid">
			   <input type="text" name="q" data-target>
			   <input type="radio" name="cat"></form></td></tr></table>`,
		},
		live: `<table><tr><td><a href="sale.html">SALE</a></td></tr>
			 <tr><td><h1>ACME Parts</h1></td></tr><tr><td>
			 <form action="q.cgi"><input type="hidden" name="sid">
			 <input type="text" name="q">
			 <input type="radio" name="cat"><input type="radio" name="brand"></form>
			 </td></tr></table>`,
	},
	{
		name: "widget-world",
		samples: []string{
			`<div><img src="logo.gif"></div><form action="find.pl">
			   <input type="text" name="term" data-target>
			   <input type="checkbox" name="instock"></form><hr>`,
			`<div><img src="logo.gif"><h2>Widget World</h2></div>
			   <form action="find.pl"><input type="text" name="term" data-target>
			   <input type="checkbox" name="instock"></form>`,
		},
		live: `<div><h2>Widget World</h2><img src="logo.gif"></div>
			 <p>Now with free shipping!</p>
			 <form action="find.pl"><input type="text" name="term">
			 <input type="checkbox" name="instock"><input type="checkbox" name="used"></form>`,
	},
	{
		name: "bolt-bazaar",
		samples: []string{
			`<h1>Bolt Bazaar</h1><hr><form action="s">
			   <input type="image" src="go.gif"><input type="text" name="s" data-target></form>`,
			`<table><tr><th>Bolt Bazaar</th></tr><tr><td><form action="s">
			   <input type="image" src="go.gif"><input type="text" name="s" data-target>
			   </form></td></tr></table>`,
		},
		live: `<table><tr><th>Bolt Bazaar</th></tr>
			 <tr><td><a href="bulk.html">bulk orders</a></td></tr>
			 <tr><td><form action="s"><input type="image" src="go.gif">
			 <input type="text" name="s"></form></td></tr></table>`,
	},
}

func main() {
	cfg := resilex.Config{
		// Refine INPUT symbols by their type attribute: the target token
		// becomes INPUT[type=text], distinct from radios and checkboxes.
		AttrKeys: []string{"type"},
		Skip:     []string{"BR"},
		// Vocabulary a redesign might introduce.
		ExtraTags: []string{"DIV", "/DIV", "P", "/P", "A", "/A", "HR", "TABLE", "/TABLE",
			"TR", "/TR", "TD", "/TD", "TH", "/TH", "H1", "/H1", "H2", "/H2", "IMG"},
	}
	// Train one wrapper per vendor and register them in a fleet — the
	// operating unit of a multi-vendor shopbot.
	fleet := resilex.NewFleet()
	for _, v := range vendors {
		var samples []resilex.Sample
		for _, s := range v.samples {
			samples = append(samples, resilex.Sample{HTML: s, Target: resilex.TargetMarker()})
		}
		w, err := resilex.Train(samples, cfg)
		if err != nil {
			log.Fatalf("%s: training: %v", v.name, err)
		}
		fleet.Add(v.name, w)
	}
	// Persist and reload the whole fleet, as a deployed robot would.
	data, err := fleet.MarshalJSON()
	if err != nil {
		log.Fatal(err)
	}
	robot, err := resilex.LoadFleet(data, resilex.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-14s %-24s %s\n", "vendor", "strategy", "live-page extraction")
	for _, v := range vendors {
		r, err := robot.ExtractFrom(v.name, v.live)
		if err != nil {
			log.Fatalf("%s: live extraction: %v", v.name, err)
		}
		if !strings.Contains(r.Source, `type="text"`) {
			log.Fatalf("%s: extracted the wrong element: %s", v.name, r.Source)
		}
		fmt.Printf("%-14s %-24s %s\n", v.name, robot.Get(v.name).Strategy(), strings.TrimSpace(r.Source))
	}
	fmt.Printf("\nfleet of %d wrappers persisted in %d bytes; every vendor's search box found on an unseen layout\n",
		robot.Len(), len(data))
}
